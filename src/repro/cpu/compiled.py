"""Compiled execution backend: basic-block translation to closures.

The reference interpreter in :mod:`repro.cpu.core` pays, per simulated
instruction, one dispatch-tuple load, one bound-method call, a handful of
attribute loads (``self.x``, ``self.lat``, ``ins.rd`` ...) and one
``_charge`` call.  This module removes that tax the way Spike and other
fast functional simulators do: discover *basic blocks* at first
execution, translate each decoded block into one specialized Python
closure, and thereafter run whole blocks per dispatch.

Specialization folds everything static into the generated source:

* register indices, immediates and branch targets become literals;
* per-instruction cycle charges are summed at translation time, so a run
  of K single-cycle ALU ops costs one ``cycle += K`` at runtime;
* class counts are batched into one dict update per class per block;
* values written earlier in a block are *forwarded* to later reads
  through local temporaries — the adjacent pairs the ISA makes common
  (``lw``+``add``, ``bne``+``addi``) fuse into superinstructions that
  never touch the architectural register file between the two halves;
* constants propagate: ``li``/``la``/``lui`` results fold into later
  address computations and ALU results at translation time;
* on the paper's Table-1 memory system (single bank, no L1D) the whole
  RAM load/store accounting chain (``Bus.load_word`` → ``MemorySystem``
  → ``MemoryPort.issue`` → ``PortStats.record``) inlines to a few local
  operations, guarded by an address-range test so MMIO (HHT FIFOs,
  configuration registers) still takes the real bus path; scalar word
  traffic and gathers go through buffer-protocol ``memoryview`` handles
  of the same RAM array (identical bytes, no numpy scalar boxing), and
  an all-in-RAM indexed gather collapses the element-serialized port
  chain to its closed form (slots at ``latency + 1`` steps, queue wait
  only on the first element);
* a *self-loop* block — terminal branch targeting its own entry, the
  shape of every hot inner loop — compiles to a closure that iterates
  internally: register/counter prologue, exit epilogue and dispatch are
  paid once per burst of iterations, and per-class counts are applied
  once, multiplied by the iteration count.  The dispatcher caps each
  burst so the instruction budget still fires at the exact reference
  instruction.

Compiled blocks are cached per ``(code_digest, entry_pc)`` — a new
``Program`` object with identical instructions reuses the cache, while
reloading a different program invalidates nothing but simply resolves to
its own block set.

**Bit-identity contract.**  With no probes attached, a compiled run
produces exactly the reference interpreter's cycles, instruction counts,
flat stats registry, architectural state and ``SimulationError``
messages.  Every generated operation mirrors the corresponding
``Cpu._op_*`` handler's arithmetic (including numpy float32 rounding in
the vector unit and the exact port-slot accounting).  Two deliberate
boundaries:

* probes/samplers force deference — :meth:`SimSession.run` only enters
  :func:`run_compiled` when *no* probe is attached, because compiled
  blocks skip the per-instruction hooks and ``probe_sink`` events;
* a ``MemoryAccessError`` aborts mid-block, so the *partial* charges of
  the faulting block may differ from the reference abort state (the
  exception type, message and memory-system side effects are identical;
  no test or figure depends on post-fault timing).

The instruction budget stays bit-exact: when a block could cross the
budget limit the dispatcher falls back to per-instruction reference
stepping for the tail, reproducing the reference error at the exact
instruction.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from ..isa.encoding import s32
from ..isa.program import Program

_U32 = 0xFFFFFFFF

#: Ops that end a basic block (control transfer or machine stop).
CONTROL_OPS = frozenset(
    "beq bne blt bge bltu bgeu jal jalr halt ecall ebreak".split()
)

#: Translation stops after this many instructions even without a
#: control op; the dispatcher simply chains into the next block.
MAX_BLOCK_LEN = 64

_BRANCH_COND = {
    "beq": ("==", False), "bne": ("!=", False),
    "blt": ("<", False), "bge": (">=", False),
    "bltu": ("<", True), "bgeu": (">=", True),
}

_BRANCH_FOLD = {
    "beq": lambda a, b: a == b, "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b, "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: (a & _U32) < (b & _U32),
    "bgeu": lambda a, b: (a & _U32) >= (b & _U32),
}


def _w(expr: str) -> str:
    """Source text of ``s32(expr)`` (wrap to signed 32-bit)."""
    return f"((({expr}) + 0x80000000) & 0xFFFFFFFF) - 0x80000000"


# op -> (expr builder over two operand atoms, constant folder).  The
# builders mirror Cpu._op_* arithmetic exactly; the folders are the same
# formulas evaluated at translation time.
_ALU3 = {
    "add": (lambda a, b: _w(f"{a} + {b}"), lambda a, b: s32(a + b)),
    "sub": (lambda a, b: _w(f"{a} - {b}"), lambda a, b: s32(a - b)),
    "and": (lambda a, b: _w(f"{a} & {b}"), lambda a, b: s32(a & b)),
    "or": (lambda a, b: _w(f"{a} | {b}"), lambda a, b: s32(a | b)),
    "xor": (lambda a, b: _w(f"{a} ^ {b}"), lambda a, b: s32(a ^ b)),
    "sll": (lambda a, b: _w(f"{a} << ({b} & 31)"),
            lambda a, b: s32(a << (b & 31))),
    "srl": (lambda a, b: _w(f"({a} & 0xFFFFFFFF) >> ({b} & 31)"),
            lambda a, b: s32((a & _U32) >> (b & 31))),
    "sra": (lambda a, b: f"{a} >> ({b} & 31)", lambda a, b: a >> (b & 31)),
    "slt": (lambda a, b: f"int({a} < {b})", lambda a, b: int(a < b)),
    "sltu": (lambda a, b: f"int(({a} & 0xFFFFFFFF) < ({b} & 0xFFFFFFFF))",
             lambda a, b: int((a & _U32) < (b & _U32))),
    "mul": (lambda a, b: _w(f"{a} * {b}"), lambda a, b: s32(a * b)),
    "mulh": (lambda a, b: _w(f"({a} * {b}) >> 32"),
             lambda a, b: s32((a * b) >> 32)),
    "mulhu": (lambda a, b:
              _w(f"(({a} & 0xFFFFFFFF) * ({b} & 0xFFFFFFFF)) >> 32"),
              lambda a, b: s32(((a & _U32) * (b & _U32)) >> 32)),
    "mulhsu": (lambda a, b: _w(f"({a} * ({b} & 0xFFFFFFFF)) >> 32"),
               lambda a, b: s32((a * (b & _U32)) >> 32)),
    # Immediate shifts take the immediate unmasked, like the handlers.
    "slli": (lambda a, b: _w(f"{a} << {b}"), lambda a, b: s32(a << b)),
    "srli": (lambda a, b: _w(f"({a} & 0xFFFFFFFF) >> {b}"),
             lambda a, b: s32((a & _U32) >> b)),
    "srai": (lambda a, b: f"{a} >> {b}", lambda a, b: a >> b),
}

#: Immediate ALU ops sharing a 3-register builder's semantics.
_ALU_IMM = {
    "addi": "add", "andi": "and", "ori": "or", "xori": "xor",
    "slti": "slt", "sltiu": "sltu",
    "slli": "slli", "srli": "srli", "srai": "srai",
}

_FP2 = {
    "fadd.s": lambda a, b: f"{a} + {b}",
    "fsub.s": lambda a, b: f"{a} - {b}",
    "fmul.s": lambda a, b: f"{a} * {b}",
    "fmin.s": lambda a, b: f"min({a}, {b})",
    "fmax.s": lambda a, b: f"max({a}, {b})",
    "fsgnj.s": lambda a, b: f"_math.copysign(abs({a}), {b})",
    "fsgnjn.s": lambda a, b:
        f"_math.copysign(abs({a}), -_math.copysign(1.0, {b}))",
}

_FMA = {
    "fmadd.s": lambda a, b, c: f"{a} * {b} + {c}",
    "fmsub.s": lambda a, b, c: f"{a} * {b} - {c}",
    "fnmadd.s": lambda a, b, c: f"-({a} * {b}) - {c}",
    "fnmsub.s": lambda a, b, c: f"-({a} * {b}) + {c}",
}

_VF_BINARY = {"vfadd.vv": "add", "vfsub.vv": "subtract",
              "vfmul.vv": "multiply"}
_VI_BINARY = {"vadd.vv": "add", "vsub.vv": "subtract",
              "vmul.vv": "multiply", "vand.vv": "bitwise_and",
              "vor.vv": "bitwise_or", "vxor.vv": "bitwise_xor"}
_VX_BINARY = {"vadd.vx": "add", "vmul.vx": "multiply",
              "vand.vx": "bitwise_and", "vor.vx": "bitwise_or"}


def _program_digest(program: Program) -> str:
    """Content digest of a program's semantic instruction fields.

    Cached on the program object: equal instruction streams share one
    digest (and therefore one compiled-block set), and reassembling or
    reloading a program resolves to a fresh, correct entry.
    """
    digest = getattr(program, "_compiled_digest", None)
    if digest is None:
        h = hashlib.sha256()
        for ins in program.instructions:
            h.update(repr((ins.op, ins.rd, ins.rs1, ins.rs2, ins.rs3,
                           ins.imm, ins.target)).encode())
        digest = h.hexdigest()[:16]
        program._compiled_digest = digest
    return digest


class CompiledBlock:
    """One translated basic block: a closure plus its instruction count.

    A *looping* block (terminal branch targeting its own entry) has the
    signature ``fn(cpu, max_execs) -> (next_pc, execs)`` and iterates
    internally; a plain block is ``fn(cpu) -> next_pc``.
    """

    __slots__ = ("fn", "n", "entry", "source", "looping")

    def __init__(self, fn, n: int, entry: int, source: str,
                 looping: bool = False):
        self.fn = fn
        self.n = n
        self.entry = entry
        self.source = source
        self.looping = looping


class _ConstLoopBranch(Exception):
    """Raised during loop translation when the backward branch folds to
    a constant; the caller recompiles the block straight-line."""


class _Codegen:
    """Accumulates the source of one block closure."""

    def __init__(self, backend):
        self.backend = backend
        self.lines: list[str] = []
        self.ind = 0
        self.pending = 0                 # static cycles not yet applied
        self.counts: dict[str, int] = {}         # class -> exec count
        self.static_cycles: dict[str, int] = {}  # class -> static cycles
        self.dyn_vars: dict[str, str] = {}       # class -> accumulator var
        self.xval: dict[int, tuple[str, object]] = {}  # forwarding map
        self.fval: dict[int, str] = {}
        self.needs: set[str] = set()
        self.ntemp = 0
        self.last_written: int | None = None
        self.hit_prev = False
        # Dead-store blanking: reg -> index of its last architectural
        # store line, eligible for removal if overwritten before the
        # next barrier (escape / branch / block exit).
        self.xstore_lines: dict[int, int] = {}

    # -- emission ------------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * (1 + self.ind) + line)

    def temp(self) -> str:
        self.ntemp += 1
        return f"_t{self.ntemp}"

    def need(self, *names: str) -> None:
        self.needs.update(names)

    # -- register access with value forwarding -------------------------
    def xref(self, i: int) -> tuple[str, int | None]:
        """(source atom, constant value or None) for a read of x[i]."""
        if i == 0:
            return "0", 0
        entry = self.xval.get(i)
        if entry is None:
            self.need("x")
            return f"x[{i}]", None
        self.backend.forwarded_reads += 1
        if i == self.last_written:
            self.hit_prev = True
        kind, payload = entry
        if kind == "const":
            return (f"({payload})" if payload < 0 else str(payload)), payload
        return payload, None

    def xwrite(self, i: int, expr: str, const: int | None = None) -> None:
        """Write x[i]; the architectural file is updated at the latest
        by the next barrier (a store made dead by a later same-block
        store to the same register is blanked — no emitted code between
        them can observe x[] directly)."""
        if not i:
            return
        self.need("x")
        stale = self.xstore_lines.get(i)
        if stale is not None:
            self.lines[stale] = None
        if const is not None:
            self.emit(f"x[{i}] = {expr}")
            self.xval[i] = ("const", const)
            self.backend.folded_constants += 1
        else:
            t = self.temp()
            self.emit(f"{t} = {expr}")
            self.emit(f"x[{i}] = {t}")
            self.xval[i] = ("name", t)
        self.xstore_lines[i] = len(self.lines) - 1
        self.last_written = i

    def store_barrier(self) -> None:
        """Every prior architectural store is now observable — stop
        blanking across this point."""
        self.xstore_lines.clear()

    def fref(self, i: int) -> str:
        name = self.fval.get(i)
        if name is None:
            self.need("f")
            return f"f[{i}]"
        self.backend.forwarded_reads += 1
        return name

    def fwrite(self, i: int, expr: str) -> None:
        self.need("f")
        t = self.temp()
        self.emit(f"{t} = {expr}")
        self.emit(f"f[{i}] = {t}")
        self.fval[i] = t

    def invalidate(self) -> None:
        self.xval.clear()
        self.fval.clear()
        self.last_written = None
        self.store_barrier()

    # -- batched port accounting ---------------------------------------
    def port_flush(self) -> None:
        """Flush the block-local port counter deltas, if any.

        Emitted before every real bus call and at block exits, so the
        port's counters (and the first-touch insertion order of
        ``by_requester``) are exactly the reference's at every point
        where another requester — or the caller — can observe them.
        """
        if "port" not in self.needs:
            return
        req = repr(self.backend.requester)
        self.emit("if _pc_req:")
        self.ind += 1
        self.emit("_pcnt.requests += _pc_req")
        self.emit("_pcnt.busy_cycles += _pc_req")
        self.emit("_pcnt.queue_cycles += _pc_q")
        self.emit(f"_pbr[{req}] = _pbr.get({req}, 0) + _pc_req")
        self.emit("_pc_req = 0")
        self.emit("_pc_q = 0")
        self.ind -= 1

    # -- cycle / class accounting --------------------------------------
    def charge_static(self, klass: str, cycles: int) -> None:
        self.counts[klass] = self.counts.get(klass, 0) + 1
        self.static_cycles[klass] = self.static_cycles.get(klass, 0) + cycles
        self.pending += cycles

    def dyn_var(self, klass: str) -> str:
        var = self.dyn_vars.get(klass)
        if var is None:
            var = f"_dc_{klass}"
            self.dyn_vars[klass] = var
        return var

    def charge_dyn(self, klass: str, cost_atom: str) -> None:
        """Count one instruction of *klass* whose cycle cost is the
        runtime value already held in *cost_atom*; advances ``cycle``."""
        self.counts[klass] = self.counts.get(klass, 0) + 1
        self.emit(f"cycle += {cost_atom}")
        self.emit(f"{self.dyn_var(klass)} += {cost_atom}")

    def flush_pending(self) -> None:
        if self.pending:
            self.emit(f"cycle += {self.pending}")
            self.pending = 0

    def epilogue(self, extra_counts: dict[str, int] | None = None,
                 extra_cycles: dict[str, int] | None = None) -> None:
        """Flush cycle and batched class counters back to the cpu.

        Emitted once per block exit arm (branch taken / fallthrough /
        straight-line end), so each arm can carry its own branch cost.
        """
        self.port_flush()
        self.emit("cpu.cycle = cycle")
        counts = dict(self.counts)
        for klass, n in (extra_counts or {}).items():
            counts[klass] = counts.get(klass, 0) + n
        if counts:
            self.need("cc")
        for klass, n in counts.items():
            parts = []
            static = (self.static_cycles.get(klass, 0)
                      + (extra_cycles or {}).get(klass, 0))
            if static:
                parts.append(str(static))
            if klass in self.dyn_vars:
                parts.append(self.dyn_vars[klass])
            self.emit(f"_cc[{klass!r}] = _cc.get({klass!r}, 0) + {n}")
            if parts:
                self.emit(f"_ccy[{klass!r}] = _ccy.get({klass!r}, 0) + "
                          + " + ".join(parts))


class CompiledBackend:
    """Per-CPU translation cache and block compiler.

    Blocks are keyed ``(code_digest, entry_pc)`` (a two-level dict) and
    survive :meth:`Cpu.reset` — registers, counters and port state are
    re-fetched in every closure's prologue precisely so the cache can.
    """

    MAX_PROGRAMS = 32

    def __init__(self, cpu):
        self.cpu = cpu
        bus = cpu.bus
        self.port = bus.port
        self.ram = bus.ram
        # The whole-chain memory inline is only valid on the Table-1
        # memory system: one bank, no L1D, no MMU.  Otherwise every
        # memory op goes through the real bus call (still compiled, just
        # not inlined) so banked/cached/translated timing stays
        # bit-identical — a TranslatingBus must see every word access so
        # its TLB charges the page walks.
        self.inline_ram = (self.port.banks == 1 and bus.mem.cache is None
                           and getattr(bus, "tlb", None) is None)
        self.requester = bus.default_requester
        self._programs: dict[str, dict[int, CompiledBlock]] = {}
        self._lat_snapshot: tuple | None = None
        # Backend-internal telemetry (deliberately NOT in the stats
        # registry: the registry is part of the bit-identity contract).
        self.blocks_compiled = 0
        self.instructions_translated = 0
        self.forwarded_reads = 0
        self.folded_constants = 0
        self.fused_pairs = 0
        self.loop_blocks = 0
        self._base_globals = {
            "_np": np,
            "_f32": np.float32,
            "_i32": np.int32,
            "_u32": np.uint32,
            "_math": math,
            "_bus_load": bus.load_word,
            "_bus_store": bus.store_word,
            "_bus_burst": bus.load_burst,
            "_bus_store_burst": bus.store_burst,
            "_port": self.port,
            "_ram_u32": self.ram._u32,
            "_ram_f32": self.ram._f32,
            # Same RAM words through the buffer protocol: a memoryview
            # index returns a plain int with no numpy-scalar boxing, and
            # a write stores the same four bytes np.uint32 would.
            "_ram_mv": memoryview(self.ram._u32),
            # Scratch for vfmacc's product (avoids a temp allocation);
            # never escapes a single emitted statement pair.
            "_scr": np.empty(64, dtype=np.float32),
        }
        from .core import (
            _PACK_F, _PACK_I, _UNPACK_F, _UNPACK_I, _bits_f32, _f32bits,
        )
        self._base_globals.update(
            _pkf=_PACK_F, _pki=_PACK_I, _upf=_UNPACK_F, _upi=_UNPACK_I,
            _bits_f32=_bits_f32, _f32bits=_f32bits,
        )

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, int]:
        return {
            "blocks_compiled": self.blocks_compiled,
            "instructions_translated": self.instructions_translated,
            "forwarded_reads": self.forwarded_reads,
            "folded_constants": self.folded_constants,
            "fused_pairs": self.fused_pairs,
            "loop_blocks": self.loop_blocks,
        }

    def blocks_for(self, program: Program) -> dict[int, CompiledBlock]:
        """The block cache for *program*, invalidated if latencies moved."""
        snap = tuple(sorted(vars(self.cpu.lat).items()))
        if snap != self._lat_snapshot:
            self._programs.clear()
            self._lat_snapshot = snap
        digest = _program_digest(program)
        blocks = self._programs.get(digest)
        if blocks is None:
            if len(self._programs) >= self.MAX_PROGRAMS:
                self._programs.pop(next(iter(self._programs)))
            blocks = {}
            self._programs[digest] = blocks
        return blocks

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def compile_block(self, program: Program, entry: int) -> CompiledBlock:
        instructions = program.instructions
        end = min(len(instructions), entry + MAX_BLOCK_LEN)
        span = []
        for pc in range(entry, end):
            ins = instructions[pc]
            span.append((pc, ins))
            if ins.op in CONTROL_OPS:
                break

        # A block whose terminal branch targets its own entry is a
        # *self-loop*: compile it as a closure that iterates internally,
        # paying prologue/epilogue/dispatch once per burst of
        # iterations instead of once per iteration.
        last_pc, last_ins = span[-1]
        looping = (len(span) >= 2 and last_ins.op in _BRANCH_COND
                   and last_ins.target == entry)
        if looping:
            snap = (self.forwarded_reads, self.folded_constants,
                    self.fused_pairs)
            try:
                return self._assemble(program, entry, span, looping=True)
            except _ConstLoopBranch:
                (self.forwarded_reads, self.folded_constants,
                 self.fused_pairs) = snap
        return self._assemble(program, entry, span, looping=False)

    def _assemble(self, program: Program, entry: int, span,
                  looping: bool) -> CompiledBlock:
        cg = _Codegen(self)
        escapes: list[tuple[str, object, object]] = []
        if looping:
            cg.ind = 1                      # body inside ``while True:``
        body = span[:-1] if looping else span
        for pc, ins in body:
            cg.hit_prev = False
            self._emit_instruction(cg, ins, pc, escapes)
            if cg.hit_prev:
                self.fused_pairs += 1

        if looping:
            pc, ins = span[-1]
            self._emit_loop_branch(cg, ins, pc)
            self.loop_blocks += 1
        else:
            last_pc, last_ins = span[-1]
            if last_ins.op not in CONTROL_OPS:
                # Straight-line block (length cap or end of program):
                # fall through to the next pc; an out-of-range
                # fallthrough is raised by the dispatcher, exactly like
                # the reference.
                cg.flush_pending()
                cg.epilogue()
                cg.emit(f"return {last_pc + 1}")

        source = self._render(cg, entry, looping)
        scope = dict(self._base_globals)
        for name_h, name_i, handler, ins in (
            (f"_h{k}", f"_i{k}", h, i)
            for k, (op, h, i) in enumerate(escapes)
        ):
            scope[name_h] = handler
            scope[name_i] = ins
        exec(compile(source, f"<block@{entry}>", "exec"), scope)
        fn = scope[f"_block_{entry}"]
        self.blocks_compiled += 1
        self.instructions_translated += len(span)
        return CompiledBlock(fn, len(span), entry, source, looping)

    def _render(self, cg: _Codegen, entry: int, looping: bool) -> str:
        arg = "cpu, _max" if looping else "cpu"
        head = [f"def _block_{entry}({arg}):"]
        if "x" in cg.needs:
            head.append("    x = cpu.x")
        if "f" in cg.needs:
            head.append("    f = cpu.f")
        if "v" in cg.needs:
            head.append("    v = cpu.v")
        if "vf" in cg.needs:
            head.append("    _vf = cpu._compiled_vf32")
        if "vi" in cg.needs:
            head.append("    _vi = cpu._compiled_vi32")
        if "vm" in cg.needs:
            head.append("    _vm = cpu._compiled_vmv")
        if "vl" in cg.needs:
            head.append("    vl_ = cpu.vl")
        head.append("    cycle = cpu.cycle")
        if "cc" in cg.needs:
            head.append("    _cc = cpu._class_counts")
            head.append("    _ccy = cpu._class_cycles")
        if "port" in cg.needs:
            head.append("    _pf = _port._bank_free")
            head.append("    _pcnt = _port.counters")
            head.append("    _pbr = _pcnt.by_requester")
            head.append("    _pc_req = 0")
            head.append("    _pc_q = 0")
        for var in cg.dyn_vars.values():
            head.append(f"    {var} = 0")
        if looping:
            head.append("    _ex = 0")
            head.append("    while True:")
        lines = [ln for ln in cg.lines if ln is not None]
        return "\n".join(head + lines) + "\n"

    def _emit_loop_branch(self, cg: _Codegen, ins, pc: int) -> None:
        """Terminal backward branch of a self-loop block.

        Each iteration charges its own cycles (memory ops inside the
        body read the live clock), while class counts multiply by the
        iteration count ``_ex`` once at exit.  All but the last
        iteration take the branch; the closure also exits when the
        dispatcher's budget cap ``_max`` is reached with the branch
        still taken, returning to the dispatcher for the tail.
        """
        lat = self.cpu.lat
        a, ac = cg.xref(ins.rs1)
        b, bc = cg.xref(ins.rs2)
        if ac is not None and bc is not None:
            raise _ConstLoopBranch()
        cmp_op, unsigned = _BRANCH_COND[ins.op]
        if unsigned:
            cond = f"({a} & 0xFFFFFFFF) {cmp_op} ({b} & 0xFFFFFFFF)"
        else:
            cond = f"{a} {cmp_op} {b}"
        taken_cost = lat.branch + lat.branch_taken_penalty
        pending = cg.pending
        cg.pending = 0
        cg.emit("_ex += 1")
        cg.emit(f"if {cond}:")
        cg.ind += 1
        if pending + taken_cost:
            cg.emit(f"cycle += {pending + taken_cost}")
        cg.emit("if _ex < _max:")
        cg.emit("    continue")
        cg.emit("cpu.counters.taken_branches += _ex")
        self._loop_epilogue(cg, f"{taken_cost} * _ex")
        cg.emit(f"return {ins.target}, _ex")
        cg.ind -= 1
        if pending + lat.branch:
            cg.emit(f"cycle += {pending + lat.branch}")
        cg.emit("cpu.counters.taken_branches += _ex - 1")
        self._loop_epilogue(cg, f"{taken_cost} * (_ex - 1) + {lat.branch}")
        cg.emit(f"return {pc + 1}, _ex")

    def _loop_epilogue(self, cg: _Codegen, branch_cycles: str) -> None:
        """Exit-arm accounting for a self-loop block: per-iteration
        class counts and static cycles multiply by ``_ex``; dynamic
        accumulators already summed across iterations.  The branch
        class lands last, matching the reference's first-charge order
        (the terminal branch charges after the body on iteration 1).
        """
        cg.port_flush()
        cg.emit("cpu.cycle = cycle")
        cg.need("cc")
        for klass, n in cg.counts.items():
            parts = []
            static = cg.static_cycles.get(klass, 0)
            if static:
                parts.append(f"{static} * _ex")
            if klass in cg.dyn_vars:
                parts.append(cg.dyn_vars[klass])
            cg.emit(f"_cc[{klass!r}] = _cc.get({klass!r}, 0) + {n} * _ex")
            if parts:
                cg.emit(f"_ccy[{klass!r}] = _ccy.get({klass!r}, 0) + "
                        + " + ".join(parts))
        cg.emit("_cc['branch'] = _cc.get('branch', 0) + _ex")
        cg.emit(f"_ccy['branch'] = _ccy.get('branch', 0) + {branch_cycles}")

    # ------------------------------------------------------------------
    def _address(self, cg: _Codegen, ins) -> tuple[str, int | None]:
        """Atom holding ``s32(x[rs1] + imm) & 0xFFFFFFFF``."""
        base, const = cg.xref(ins.rs1)
        imm = ins.imm or 0
        if const is not None:
            addr = s32(const + imm) & _U32
            return str(addr), addr
        t = cg.temp()
        # s32(v) & 0xFFFFFFFF == v & 0xFFFFFFFF for any int: the s32
        # re-centering is a no-op under the final 32-bit mask.
        expr = f"{base} + {imm}" if imm else base
        cg.emit(f"{t} = ({expr}) & 0xFFFFFFFF")
        return t, None

    def _inline_port_issue(self, cg: _Codegen, clock: str = "cycle",
                           count: str = "1") -> None:
        """Single-bank ``MemoryPort.issue``/``issue_burst`` accounting.

        Leaves ``_slot`` holding the issue slot.  Counter deltas batch
        into block locals (``_pc_req``, ``_pc_q``) — every inline op
        adds the same amount to requests, busy_cycles and the
        requester's bucket, so one pair of accumulators carries all
        four counters until :meth:`_Codegen.port_flush`.
        """
        cg.need("port")
        cg.emit(f"_slot = {clock} if {clock} >= _pf[0] else _pf[0]")
        if count == "1":
            cg.emit("_pf[0] = _slot + 1")
            cg.emit("_pc_req += 1")
            cg.emit(f"_pc_q += _slot - {clock}")
        else:
            cg.emit(f"_pf[0] = _slot + {count}")
            cg.emit(f"_pc_req += {count}")
            cg.emit(f"_pc_q += (_slot - {clock}) * {count}")

    def _emit_gather_slow(self, cg: _Codegen, ram_size: int,
                          port_lat: int) -> None:
        """Per-element gather chain over the precomputed ``_eas`` list:
        exact reference order for mixed RAM/MMIO/faulting elements."""
        cg.emit("_t = cycle")
        cg.emit("_i = 0")
        cg.emit("for _ea in _eas:")
        cg.ind += 1
        cg.emit(f"if _ea < {ram_size} and not _ea & 3:")
        cg.ind += 1
        self._inline_port_issue(cg, clock="_t")
        cg.emit("_vm_d[_i] = _ram_mv[_ea >> 2]")
        cg.emit(f"_t = _slot + {port_lat + 1}")
        cg.ind -= 1
        cg.emit("else:")
        cg.ind += 1
        cg.port_flush()
        cg.emit("_val, _comp = _bus_load(_ea, _t)")
        cg.emit("_vm_d[_i] = _val")
        cg.emit("_t = _comp + 1")
        cg.ind -= 1
        cg.emit("_i += 1")
        cg.ind -= 1

    # ------------------------------------------------------------------
    def _emit_instruction(self, cg: _Codegen, ins, pc: int,
                          escapes: list) -> None:
        op = ins.op
        lat = self.cpu.lat
        ram_size = self.ram.size
        port_lat = self.port.latency

        # ---- integer ALU ------------------------------------------------
        if op in ("li", "la"):
            cg.xwrite(ins.rd, str(s32(ins.imm)), const=s32(ins.imm))
            cg.charge_static("int_alu", lat.int_alu)
            return
        if op == "lui":
            value = s32(ins.imm << 12)
            cg.xwrite(ins.rd, str(value), const=value)
            cg.charge_static("int_alu", lat.int_alu)
            return
        if op == "auipc":
            value = s32((ins.imm << 12) + pc * 4)
            cg.xwrite(ins.rd, str(value), const=value)
            cg.charge_static("int_alu", lat.int_alu)
            return
        if op in _ALU_IMM:
            build, fold = _ALU3[_ALU_IMM[op]]
            a, ac = cg.xref(ins.rs1)
            imm = ins.imm
            if ac is not None:
                value = fold(ac, imm)
                cg.xwrite(ins.rd, str(value), const=value)
            else:
                b = f"({imm})" if imm < 0 else str(imm)
                cg.xwrite(ins.rd, build(a, b))
            cg.charge_static("int_alu", lat.int_alu)
            return
        if op in _ALU3 and ins.rs2 is not None:
            build, fold = _ALU3[op]
            a, ac = cg.xref(ins.rs1)
            b, bc = cg.xref(ins.rs2)
            klass = ("int_mul" if op.startswith("mul") else "int_alu")
            cost = lat.int_mul if klass == "int_mul" else lat.int_alu
            if ac is not None and bc is not None:
                value = fold(ac, bc)
                cg.xwrite(ins.rd, str(value), const=value)
            else:
                cg.xwrite(ins.rd, build(a, b))
            cg.charge_static(klass, cost)
            return
        if op in ("div", "divu", "rem", "remu"):
            self._emit_divrem(cg, ins, op, lat)
            return

        # ---- loads / stores --------------------------------------------
        if op == "lw":
            addr, const = self._address(cg, ins)
            self._emit_word_load(cg, addr, const, ram_size, port_lat,
                                 lat.load_use, "scalar_load")
            if ins.rd:
                cg.xwrite(ins.rd, _w("_val"))
            return
        if op == "flw":
            addr, const = self._address(cg, ins)
            self._emit_word_load(cg, addr, const, ram_size, port_lat,
                                 lat.load_use, "scalar_load",
                                 float_dest=True)
            cg.fwrite(ins.rd, "_fv")
            return
        if op == "sw":
            addr, const = self._address(cg, ins)
            val, vc = cg.xref(ins.rs2)
            store = (str(vc & _U32) if vc is not None
                     else f"{val} & 0xFFFFFFFF")
            self._emit_word_store(cg, addr, const, store, ram_size)
            cg.charge_static("scalar_store", lat.scalar_store)
            return
        if op == "fsw":
            addr, const = self._address(cg, ins)
            src = cg.fref(ins.rs2)
            self._emit_word_store(cg, addr, const, src, ram_size,
                                  float_src=True)
            cg.charge_static("scalar_store", lat.scalar_store)
            return

        # ---- branches / jumps / system ---------------------------------
        if op in _BRANCH_COND:
            self._emit_branch(cg, ins, op, pc, lat)
            return
        if op == "jal":
            if ins.rd:
                cg.xwrite(ins.rd, str((pc + 1) * 4), const=(pc + 1) * 4)
            self._exit_arm(cg, lat.jump, "jump", lat.jump, str(ins.target))
            return
        if op == "jalr":
            a, ac = cg.xref(ins.rs1)
            imm = ins.imm or 0
            if ac is not None:
                dest = str((s32(ac + imm) & ~1) // 4)
            else:
                cg.emit(f"_dest = (({_w(f'{a} + {imm}')}) & -2) // 4")
                dest = "_dest"
            if ins.rd:
                cg.xwrite(ins.rd, str((pc + 1) * 4), const=(pc + 1) * 4)
            self._exit_arm(cg, lat.jump, "jump", lat.jump, dest)
            return
        if op in ("halt", "ecall", "ebreak"):
            cg.emit("cpu.halted = True")
            self._exit_arm(cg, lat.system, "system", lat.system, str(pc))
            return
        if op == "nopseudo":
            cg.charge_static("system", lat.system)
            return

        # ---- scalar FP --------------------------------------------------
        if self._emit_scalar_fp(cg, ins, op, lat):
            return

        # ---- vector -----------------------------------------------------
        if self._emit_vector(cg, ins, op, lat, ram_size, port_lat):
            return

        # ---- escape hatch ----------------------------------------------
        # Rare ops (sub-word loads/stores, anything future) call the
        # reference handler with the decoded Instr folded in as a
        # constant.  The handler charges through cpu._charge itself, so
        # sync the batched cycle counter around the call.
        cg.flush_pending()
        cg.port_flush()
        cg.emit("cpu.cycle = cycle")
        k = len(escapes)
        escapes.append((op, self.cpu._dispatch[op], ins))
        cg.emit(f"_h{k}(_i{k}, {pc})")
        cg.emit("cycle = cpu.cycle")
        cg.invalidate()

    # ------------------------------------------------------------------
    def _emit_divrem(self, cg: _Codegen, ins, op: str, lat) -> None:
        a, _ = cg.xref(ins.rs1)
        b, _ = cg.xref(ins.rs2)
        if op == "div":
            cg.emit(f"_a = {a}; _b = {b}")
            cg.emit("if _b == 0:")
            cg.emit("    _q = -1")
            cg.emit("elif _a == -2147483648 and _b == -1:")
            cg.emit("    _q = _a")
            cg.emit("else:")
            cg.emit("    _q = int(_a / _b)")
        elif op == "divu":
            cg.emit(f"_a = {a} & 0xFFFFFFFF; _b = {b} & 0xFFFFFFFF")
            cg.emit("_q = 0xFFFFFFFF if _b == 0 else _a // _b")
        elif op == "rem":
            cg.emit(f"_a = {a}; _b = {b}")
            cg.emit("if _b == 0:")
            cg.emit("    _q = _a")
            cg.emit("elif _a == -2147483648 and _b == -1:")
            cg.emit("    _q = 0")
            cg.emit("else:")
            cg.emit("    _q = _a - int(_a / _b) * _b")
        else:  # remu
            cg.emit(f"_a = {a} & 0xFFFFFFFF; _b = {b} & 0xFFFFFFFF")
            cg.emit("_q = _a if _b == 0 else _a % _b")
        if ins.rd:
            cg.xwrite(ins.rd, _w("_q"))
        cg.charge_static("int_div", lat.int_div)

    def _emit_word_load(self, cg: _Codegen, addr: str, const: int | None,
                        ram_size: int, port_lat: int, load_use: int,
                        klass: str, float_dest: bool = False) -> None:
        """``Bus.load_word`` with the single-bank RAM chain inlined.

        Leaves ``_val`` (int) or ``_fv`` (float) and charges *klass*.
        """
        cg.flush_pending()
        fast_ok = const is not None and const < ram_size and not const & 3
        fast_known = const is not None
        if self.inline_ram and (not fast_known or fast_ok):
            if not fast_known:
                cg.emit(f"if {addr} < {ram_size} and not {addr} & 3:")
                cg.ind += 1
            self._inline_port_issue(cg)
            cg.emit(f"_cost = _slot + {port_lat + load_use} - cycle")
            if float_dest:
                cg.emit(f"_fv = float(_ram_f32[{addr} >> 2])")
            else:
                cg.emit(f"_val = _ram_mv[{addr} >> 2]")
            if not fast_known:
                cg.ind -= 1
                cg.emit("else:")
                cg.ind += 1
                self._emit_generic_load(cg, addr, load_use, float_dest)
                cg.ind -= 1
        else:
            self._emit_generic_load(cg, addr, load_use, float_dest)
        cg.charge_dyn(klass, "_cost")

    def _emit_generic_load(self, cg: _Codegen, addr: str, load_use: int,
                           float_dest: bool) -> None:
        cg.port_flush()
        cg.emit(f"_val, _comp = _bus_load({addr}, cycle)")
        cg.emit(f"_cost = _comp - cycle + {load_use}")
        if float_dest:
            cg.emit("_fv = _bits_f32(_val)")

    def _emit_word_store(self, cg: _Codegen, addr: str, const: int | None,
                         value: str, ram_size: int,
                         float_src: bool = False) -> None:
        cg.flush_pending()
        fast_ok = const is not None and const < ram_size and not const & 3
        fast_known = const is not None
        generic_value = (f"_f32bits({value})" if float_src else value)
        if self.inline_ram and (not fast_known or fast_ok):
            if not fast_known:
                cg.emit(f"if {addr} < {ram_size} and not {addr} & 3:")
                cg.ind += 1
            self._inline_port_issue(cg)
            if float_src:
                cg.emit(f"_ram_f32[{addr} >> 2] = {value}")
            else:
                cg.emit(f"_ram_mv[{addr} >> 2] = {value}")
            if not fast_known:
                cg.ind -= 1
                cg.emit("else:")
                cg.ind += 1
                cg.port_flush()
                cg.emit(f"_bus_store({addr}, {generic_value}, cycle)")
                cg.ind -= 1
        else:
            cg.port_flush()
            cg.emit(f"_bus_store({addr}, {generic_value}, cycle)")

    def _exit_arm(self, cg: _Codegen, cost: int, klass: str,
                  klass_cycles: int, dest: str) -> None:
        """Terminal instruction: flush everything and return *dest*."""
        total = cg.pending + cost
        if total:
            cg.emit(f"cycle += {total}")
        cg.pending = 0
        cg.epilogue(extra_counts={klass: 1},
                    extra_cycles={klass: klass_cycles})
        cg.emit(f"return {dest}")

    def _emit_branch(self, cg: _Codegen, ins, op: str, pc: int,
                     lat) -> None:
        a, ac = cg.xref(ins.rs1)
        b, bc = cg.xref(ins.rs2)
        taken_cost = lat.branch + lat.branch_taken_penalty
        if ac is not None and bc is not None:
            taken = _BRANCH_FOLD[op](ac, bc)
            if taken:
                cg.emit("cpu.counters.taken_branches += 1")
                self._exit_arm(cg, taken_cost, "branch", taken_cost,
                               str(ins.target))
            else:
                self._exit_arm(cg, lat.branch, "branch", lat.branch,
                               str(pc + 1))
            return
        cmp_op, unsigned = _BRANCH_COND[op]
        if unsigned:
            cond = f"({a} & 0xFFFFFFFF) {cmp_op} ({b} & 0xFFFFFFFF)"
        else:
            cond = f"{a} {cmp_op} {b}"
        pending = cg.pending
        cg.pending = 0
        cg.emit(f"if {cond}:")
        cg.ind += 1
        cg.emit("cpu.counters.taken_branches += 1")
        cg.pending = pending
        self._exit_arm(cg, taken_cost, "branch", taken_cost,
                       str(ins.target))
        cg.ind -= 1
        cg.pending = pending
        self._exit_arm(cg, lat.branch, "branch", lat.branch, str(pc + 1))

    # ------------------------------------------------------------------
    def _emit_scalar_fp(self, cg: _Codegen, ins, op: str, lat) -> bool:
        if op in _FP2:
            cg.fwrite(ins.rd, _FP2[op](cg.fref(ins.rs1), cg.fref(ins.rs2)))
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fsgnjx.s":
            a, b = cg.fref(ins.rs1), cg.fref(ins.rs2)
            cg.emit(f"_sgn = _math.copysign(1.0, {a}) * "
                    f"_math.copysign(1.0, {b})")
            cg.fwrite(ins.rd, f"_math.copysign(abs({a}), _sgn)")
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fdiv.s":
            a, b = cg.fref(ins.rs1), cg.fref(ins.rs2)
            cg.emit(f"_fa = {a}; _fb = {b}")
            cg.fwrite(ins.rd,
                      "float('nan') if _fb == 0.0 and _fa == 0.0 else "
                      "(float('inf') if _fb == 0.0 else _fa / _fb)")
            cg.charge_static("fp_div", lat.fp_div)
            return True
        if op in _FMA:
            expr = _FMA[op](cg.fref(ins.rs1), cg.fref(ins.rs2),
                            cg.fref(ins.rs3))
            cg.fwrite(ins.rd, expr)
            cg.charge_static("fp_fma", lat.fp_fma)
            return True
        if op in ("feq.s", "flt.s", "fle.s"):
            cmp_op = {"feq.s": "==", "flt.s": "<", "fle.s": "<="}[op]
            if ins.rd:
                cg.xwrite(ins.rd,
                          f"int({cg.fref(ins.rs1)} {cmp_op} "
                          f"{cg.fref(ins.rs2)})")
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fmv.x.w":
            if ins.rd:
                cg.xwrite(ins.rd, f"_upi(_pkf({cg.fref(ins.rs1)}))[0]")
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fmv.w.x":
            a, ac = cg.xref(ins.rs1)
            atom = str(s32(ac)) if ac is not None else _w(a)
            cg.fwrite(ins.rd, f"_upf(_pki({atom}))[0]")
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fcvt.w.s":
            if ins.rd:
                cg.xwrite(ins.rd, _w(f"int({cg.fref(ins.rs1)})"))
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fcvt.wu.s":
            if ins.rd:
                cg.xwrite(
                    ins.rd,
                    _w(f"max(0, int({cg.fref(ins.rs1)})) & 0xFFFFFFFF"))
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fcvt.s.w":
            a, ac = cg.xref(ins.rs1)
            cg.fwrite(ins.rd,
                      f"float({ac})" if ac is not None else f"float({a})")
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        if op == "fcvt.s.wu":
            a, ac = cg.xref(ins.rs1)
            atom = str(ac & _U32) if ac is not None else f"{a} & 0xFFFFFFFF"
            cg.fwrite(ins.rd, f"float({atom})")
            cg.charge_static("fp_alu", lat.fp_alu)
            return True
        return False

    # ------------------------------------------------------------------
    def _emit_vector(self, cg: _Codegen, ins, op: str, lat,
                     ram_size: int, port_lat: int) -> bool:
        if op == "vsetvli":
            cg.need("vl")
            if ins.rs1 == 0:
                cg.emit(f"vl_ = {self.cpu.vlmax}")
            else:
                a, _ = cg.xref(ins.rs1)
                cg.emit(f"_req = {a} & 0xFFFFFFFF")
                cg.emit(f"vl_ = _req if _req < {self.cpu.vlmax} "
                        f"else {self.cpu.vlmax}")
            cg.emit("cpu.vl = vl_")
            if ins.rd:
                cg.xwrite(ins.rd, "vl_")
            cg.charge_static("vector_config", lat.vector_config)
            return True
        if op == "vle32.v":
            cg.need("v", "vl")
            a, ac = cg.xref(ins.rs1)
            addr = str(ac & _U32) if ac is not None else None
            if addr is None:
                addr = cg.temp()
                cg.emit(f"{addr} = {a} & 0xFFFFFFFF")
            cg.flush_pending()
            if self.inline_ram:
                cg.emit(f"if vl_ >= 1 and {addr} + (vl_ << 2) <= {ram_size}"
                        f" and not {addr} & 3:")
                cg.ind += 1
                self._inline_port_issue(cg, count="vl_")
                cg.emit(f"_cost = _slot + vl_ + "
                        f"{port_lat + lat.load_use - 1} - cycle")
                cg.emit(f"_wi = {addr} >> 2")
                cg.emit(f"v[{ins.rd}][:vl_] = _ram_u32[_wi:_wi + vl_]")
                cg.ind -= 1
                cg.emit("else:")
                cg.ind += 1
                cg.port_flush()
                cg.emit(f"_vals, _comp = _bus_burst({addr}, vl_, cycle)")
                cg.emit(f"v[{ins.rd}][:vl_] = _vals")
                cg.emit(f"_cost = _comp - cycle + {lat.load_use}")
                cg.ind -= 1
            else:
                cg.port_flush()
                cg.emit(f"_vals, _comp = _bus_burst({addr}, vl_, cycle)")
                cg.emit(f"v[{ins.rd}][:vl_] = _vals")
                cg.emit(f"_cost = _comp - cycle + {lat.load_use}")
            cg.charge_dyn("vector_load", "_cost")
            return True
        if op == "vse32.v":
            cg.need("v", "vl")
            a, ac = cg.xref(ins.rs1)
            addr = str(ac & _U32) if ac is not None else None
            if addr is None:
                addr = cg.temp()
                cg.emit(f"{addr} = {a} & 0xFFFFFFFF")
            cg.flush_pending()
            if self.inline_ram:
                cg.emit(f"if vl_ >= 1 and {addr} + (vl_ << 2) <= {ram_size}"
                        f" and not {addr} & 3:")
                cg.ind += 1
                self._inline_port_issue(cg, count="vl_")
                cg.emit(f"_wi = {addr} >> 2")
                cg.emit(f"_ram_u32[_wi:_wi + vl_] = v[{ins.rs2}][:vl_]")
                cg.ind -= 1
                cg.emit("else:")
                cg.ind += 1
                cg.port_flush()
                cg.emit(f"_bus_store_burst({addr}, "
                        f"[int(_b) for _b in v[{ins.rs2}][:vl_]], cycle)")
                cg.ind -= 1
            else:
                cg.port_flush()
                cg.emit(f"_bus_store_burst({addr}, "
                        f"[int(_b) for _b in v[{ins.rs2}][:vl_]], cycle)")
            per = lat.vector_store_per_elem
            cg.emit(f"_cost = {per} * vl_")
            cg.emit("if _cost < 1: _cost = 1")
            cg.charge_dyn("vector_store", "_cost")
            return True
        if op == "vluxei32.v":
            cg.need("vl")
            a, ac = cg.xref(ins.rs1)
            base = str(ac & _U32) if ac is not None else None
            if base is None:
                base = cg.temp()
                cg.emit(f"{base} = {a} & 0xFFFFFFFF")
            cg.flush_pending()
            if self.inline_ram:
                # Fast path: all effective addresses in RAM and aligned.
                # With the single-bank port, element i's request issues
                # exactly when element i-1's response is consumed, so
                # the whole serialized chain has a closed form: slots at
                # step = latency + 1, queue wait only on the first
                # element.  Checked element-wise over plain ints first;
                # any MMIO/unaligned/out-of-range element falls back to
                # the per-element chain (which raises like the
                # reference on a bad address).
                step = port_lat + 1
                cg.need("vm", "port")
                cg.emit(f"_eas = [({base} + _o) & 0xFFFFFFFF "
                        f"for _o in _vm[{ins.rs2}][:vl_].tolist()]")
                cg.emit(f"_vm_d = _vm[{ins.rd}]")
                cg.emit("_orb = 0")
                cg.emit("for _ea in _eas:")
                cg.emit("    _orb |= _ea")
                cg.emit(f"if _eas and max(_eas) < {ram_size} "
                        "and not _orb & 3:")
                cg.ind += 1
                cg.emit("_slot = cycle if cycle >= _pf[0] else _pf[0]")
                cg.emit(f"_pf[0] = _slot + {step} * (vl_ - 1) + 1")
                cg.emit("_pc_req += vl_")
                cg.emit("_pc_q += _slot - cycle")
                cg.emit("_i = 0")
                cg.emit("for _ea in _eas:")
                cg.emit("    _vm_d[_i] = _ram_mv[_ea >> 2]; _i += 1")
                cg.emit(f"_t = _slot + {step} * vl_")
                cg.ind -= 1
                cg.emit("else:")
                cg.ind += 1
                self._emit_gather_slow(cg, ram_size, port_lat)
                cg.ind -= 1
            else:
                cg.need("v")
                cg.emit(f"_off = v[{ins.rs2}]")
                cg.emit(f"_dst = v[{ins.rd}]")
                cg.emit("_t = cycle")
                cg.emit("for _i in range(vl_):")
                cg.ind += 1
                cg.emit(f"_ea = ({base} + int(_off[_i])) & 0xFFFFFFFF")
                cg.emit("_val, _comp = _bus_load(_ea, _t)")
                cg.emit("_dst[_i] = _val")
                cg.emit("_t = _comp + 1")
                cg.ind -= 1
            cg.emit(f"_cost = _t - cycle + {lat.load_use}")
            cg.charge_dyn("vector_gather", "_cost")
            return True
        if op in _VF_BINARY:
            cg.need("vf", "vl")
            fn = _VF_BINARY[op]
            cg.emit(f"_np.{fn}(_vf[{ins.rs1}][:vl_], "
                    f"_vf[{ins.rs2}][:vl_], out=_vf[{ins.rd}][:vl_])")
            cg.charge_static("vector_fp", lat.vector_fp)
            return True
        if op == "vfmacc.vv":
            cg.need("vf", "vl")
            cg.emit("_sc = _scr[:vl_]")
            cg.emit(f"_np.multiply(_vf[{ins.rs1}][:vl_], "
                    f"_vf[{ins.rs2}][:vl_], out=_sc)")
            cg.emit(f"_acc = _vf[{ins.rd}][:vl_]")
            cg.emit("_np.add(_acc, _sc, out=_acc)")
            cg.charge_static("vector_fp", lat.vector_fp)
            return True
        if op == "vfredosum.vs":
            cg.need("vf", "vl")
            cg.emit(f"_vec = _vf[{ins.rs1}][:vl_]")
            cg.emit(f"_acc = _f32(_vf[{ins.rs2}][0])")
            cg.emit("for _i in range(vl_):")
            cg.emit("    _acc = _f32(_acc + _vec[_i])")
            cg.emit(f"_vf[{ins.rd}][0] = _acc")
            cg.emit(f"_cost = {lat.vector_fp} + "
                    f"{lat.vector_reduction_per_elem} * vl_")
            cg.charge_dyn("vector_fp", "_cost")
            return True
        if op == "vfredusum.vs":
            cg.need("vf", "vl")
            cg.emit(f"_vec = _vf[{ins.rs1}][:vl_]")
            cg.emit(f"_acc = _f32(_vf[{ins.rs2}][0])")
            cg.emit("_tot = _f32(_acc + _vec.sum(dtype=_f32))")
            cg.emit(f"_vf[{ins.rd}][0] = _tot")
            cg.emit(f"_cost = {lat.vector_fp} + max(1, vl_.bit_length())")
            cg.charge_dyn("vector_fp", "_cost")
            return True
        if op == "vredsum.vs":
            cg.need("vi", "vl")
            cg.emit(f"_vec = _vi[{ins.rs1}][:vl_]")
            cg.emit(f"_acc = int(_vi[{ins.rs2}][0])")
            cg.emit(f"_tot = {_w('_acc + int(_vec.sum())')}")
            cg.emit(f"_vi[{ins.rd}][0] = _tot")
            cg.emit(f"_cost = {lat.vector_int} + max(1, vl_.bit_length())")
            cg.charge_dyn("vector_int", "_cost")
            return True
        if op in _VI_BINARY:
            cg.need("vi", "vl")
            fn = _VI_BINARY[op]
            cg.emit(f"_np.{fn}(_vi[{ins.rs1}][:vl_], "
                    f"_vi[{ins.rs2}][:vl_], out=_vi[{ins.rd}][:vl_])")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op in _VX_BINARY:
            cg.need("vi", "vl")
            fn = _VX_BINARY[op]
            a, ac = cg.xref(ins.rs2)
            atom = str(s32(ac)) if ac is not None else _w(a)
            cg.emit(f"_np.{fn}(_vi[{ins.rs1}][:vl_], "
                    f"_i32({atom}), out=_vi[{ins.rd}][:vl_])")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op == "vsll.vi":
            # numpy's uint32 << drops shifted-out bits like C, so the
            # reference's ``& 0xFFFFFFFF`` is an identity — elided.
            cg.need("v", "vl")
            cg.emit(f"_np.left_shift(v[{ins.rs1}][:vl_], {ins.imm}, "
                    f"out=v[{ins.rd}][:vl_])")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op == "vsrl.vi":
            cg.need("v", "vl")
            cg.emit(f"_np.right_shift(v[{ins.rs1}][:vl_], {ins.imm}, "
                    f"out=v[{ins.rd}][:vl_])")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op in ("vadd.vi", "vand.vi"):
            fn = "add" if op == "vadd.vi" else "bitwise_and"
            cg.need("vi", "vl")
            cg.emit(f"_np.{fn}(_vi[{ins.rs1}][:vl_], _i32({ins.imm}), "
                    f"out=_vi[{ins.rd}][:vl_])")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op == "vmv.v.i":
            cg.need("vi", "vl")
            cg.emit(f"_vi[{ins.rd}][:vl_] = {ins.imm}")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op in ("vmv.v.x", "vmv.s.x"):
            cg.need("vi", "vl")
            a, ac = cg.xref(ins.rs1)
            atom = str(s32(ac)) if ac is not None else _w(a)
            if op == "vmv.v.x":
                cg.emit(f"_vi[{ins.rd}][:vl_] = {atom}")
            else:
                cg.emit(f"_vi[{ins.rd}][0] = {atom}")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op == "vid.v":
            cg.need("v", "vl")
            cg.emit(f"v[{ins.rd}][:vl_] = _np.arange(vl_, dtype=_u32)")
            cg.charge_static("vector_int", lat.vector_int)
            return True
        if op == "vfmv.f.s":
            cg.need("vf")
            cg.fwrite(ins.rd, f"float(_vf[{ins.rs1}][0])")
            cg.charge_static("vector_fp", lat.vector_fp)
            return True
        if op == "vfmv.s.f":
            cg.need("vf")
            cg.emit(f"_vf[{ins.rd}][0] = {cg.fref(ins.rs1)}")
            cg.charge_static("vector_fp", lat.vector_fp)
            return True
        if op == "vfmv.v.f":
            cg.need("vf", "vl")
            cg.emit(f"_vf[{ins.rd}][:vl_] = {cg.fref(ins.rs1)}")
            cg.charge_static("vector_fp", lat.vector_fp)
            return True
        return False


def run_compiled(session) -> "CpuStats":  # noqa: F821 - doc type
    """Drive *session* to halt on the compiled backend.

    Mirrors :meth:`SimSession.run` for the no-probe case: same entry
    state, same budget semantics, same ``finally`` bookkeeping.  Blocks
    that could cross the instruction budget are executed on the
    reference per-instruction path so the budget error fires at the
    exact instruction with the exact message.
    """
    cpu = session.cpu
    program = session.program
    backend = getattr(cpu, "_compiled_backend", None)
    if backend is None or backend.cpu is not cpu:
        backend = CompiledBackend(cpu)
        cpu._compiled_backend = backend
    # Per-run register-file views: ``Cpu.reset`` replaces the vector
    # arrays, so float/int views and buffer-protocol handles are rebuilt
    # at run entry (they stay valid for the whole run) and fetched by
    # block prologues from the cpu.
    cpu._compiled_vf32 = [a.view(np.float32) for a in cpu.v]
    cpu._compiled_vi32 = [a.view(np.int32) for a in cpu.v]
    cpu._compiled_vmv = [memoryview(a) for a in cpu.v]
    blocks = backend.blocks_for(program)
    blocks_get = blocks.get
    code = session._code
    n = len(code)
    budget = cpu.config.max_instructions
    stats = cpu.counters
    executed = stats.instructions
    limit = executed + budget
    pc = session._pc
    try:
        while not cpu.halted:
            block = blocks_get(pc)
            if block is None:
                if not 0 <= pc < n:
                    raise session._pc_error(pc)
                block = backend.compile_block(program, pc)
                blocks[pc] = block
            bn = block.n
            if executed + bn >= limit:
                # Reference tail: bit-exact budget accounting.
                while not cpu.halted:
                    if not 0 <= pc < n:
                        raise session._pc_error(pc)
                    handler, ins = code[pc]
                    pc = handler(ins, pc)
                    executed += 1
                    if executed >= limit:
                        raise session._budget_error(budget)
                break
            if block.looping:
                # Iterate inside the closure, capped so a full burst
                # stays strictly under the budget; a capped burst falls
                # back here and ultimately into the reference tail.
                pc, ex = block.fn(cpu, (limit - executed - 1) // bn)
                executed += ex * bn
            else:
                pc = block.fn(cpu)
                executed += bn
    finally:
        session._pc = pc
        stats.instructions = executed
        stats.cycles = cpu.cycle
    return stats


#: Instruction-skew bound for the multi-core compiled driver: one
#: scheduler pick never runs a core more than ~this many instructions
#: ahead of the others, so shared-port requests still arrive in rough
#: global time order (single-core runs are unbounded, as before).
MULTI_CORE_SKEW = 64


def run_compiled_multi(mcs) -> "CpuStats":  # noqa: F821 - doc type
    """Drive a :class:`~repro.instrument.session.MultiCoreSession` on
    the compiled backend.

    Interleaves the cores at *basic-block* grain: each scheduler pick
    (earliest core clock, ties by index — the same arbitration as the
    reference loop) runs one block, with looping blocks' internal
    iteration capped by :data:`MULTI_CORE_SKEW` so no core races far
    ahead of the shared port's arbitration.  Per-core budgets fall back
    to the reference per-instruction tail for exact error accounting,
    exactly like :func:`run_compiled`.
    """
    from .core import CpuStats

    cpus = mcs.cpus
    sessions = mcs._sessions
    program = mcs.program
    backends = []
    blockmaps = []
    for cpu in cpus:
        backend = getattr(cpu, "_compiled_backend", None)
        if backend is None or backend.cpu is not cpu:
            backend = CompiledBackend(cpu)
            cpu._compiled_backend = backend
        cpu._compiled_vf32 = [a.view(np.float32) for a in cpu.v]
        cpu._compiled_vi32 = [a.view(np.int32) for a in cpu.v]
        cpu._compiled_vmv = [memoryview(a) for a in cpu.v]
        backends.append(backend)
        blockmaps.append(backend.blocks_for(program))
    executed = [cpu.counters.instructions for cpu in cpus]
    limits = [
        executed[i] + cpu.config.max_instructions
        for i, cpu in enumerate(cpus)
    ]
    pcs = [s._pc for s in sessions]
    try:
        while True:
            sel = -1
            sel_cycle = 0
            for i, cpu in enumerate(cpus):
                if cpu.halted:
                    continue
                c = cpu.cycle
                if sel < 0 or c < sel_cycle:
                    sel = i
                    sel_cycle = c
            if sel < 0:
                break
            cpu = cpus[sel]
            session = sessions[sel]
            pc = pcs[sel]
            blocks = blockmaps[sel]
            block = blocks.get(pc)
            if block is None:
                if not 0 <= pc < len(session._code):
                    raise session._pc_error(pc)
                block = backends[sel].compile_block(program, pc)
                blocks[pc] = block
            bn = block.n
            if executed[sel] + bn >= limits[sel]:
                # Reference tail, one instruction per pick: bit-exact
                # budget errors without starving the other cores.
                code = session._code
                if not 0 <= pc < len(code):
                    raise session._pc_error(pc)
                handler, ins = code[pc]
                pcs[sel] = handler(ins, pc)
                executed[sel] += 1
                if executed[sel] >= limits[sel]:
                    raise session._budget_error(cpu.config.max_instructions)
                continue
            if block.looping:
                cap = (limits[sel] - executed[sel] - 1) // bn
                skew_cap = MULTI_CORE_SKEW // bn
                if skew_cap < 1:
                    skew_cap = 1
                if cap > skew_cap:
                    cap = skew_cap
                pc, ex = block.fn(cpu, cap)
                pcs[sel] = pc
                executed[sel] += ex * bn
            else:
                pcs[sel] = block.fn(cpu)
                executed[sel] += bn
    finally:
        total = 0
        slowest = 0
        for i, cpu in enumerate(cpus):
            sessions[i]._pc = pcs[i]
            stats = cpu.counters
            stats.instructions = executed[i]
            stats.cycles = cpu.cycle
            total += executed[i]
            if cpu.cycle > slowest:
                slowest = cpu.cycle
    return CpuStats(instructions=total, cycles=slowest)
