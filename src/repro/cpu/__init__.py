"""Primary-core model: in-order RV32IMF+V with a non-pipelined vector unit."""

from .compiled import CompiledBackend, CompiledBlock, run_compiled
from .core import Cpu, CpuStats, SimulationError
from .timing import BACKENDS, CpuConfig, LatencyTable

__all__ = [
    "BACKENDS",
    "CompiledBackend",
    "CompiledBlock",
    "Cpu",
    "CpuStats",
    "SimulationError",
    "CpuConfig",
    "LatencyTable",
    "run_compiled",
]
