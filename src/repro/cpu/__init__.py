"""Primary-core model: in-order RV32IMF+V with a non-pipelined vector unit."""

from .core import Cpu, CpuStats, SimulationError
from .timing import CpuConfig, LatencyTable

__all__ = ["Cpu", "CpuStats", "SimulationError", "CpuConfig", "LatencyTable"]
