"""Latency model of the in-order 3-stage core (Table 1).

The paper's core is an in-order 3-stage pipeline where "loads that do not
complete in a single cycle stall the pipeline" and "the vector unit is not
pipelined" with a vector arithmetic latency of 4 cycles.  We charge each
instruction a whole-pipeline cost:

* single-cycle integer ops retire 1/cycle (the steady-state of a 3-stage
  in-order pipeline),
* multi-cycle ops (multiply, divide, FP, vector) stall for their latency,
* loads stall until the memory response arrives (port completion), plus
  one writeback cycle,
* taken branches pay a flush penalty,
* indexed vector gathers serialise element by element (address generation
  depends on the previous response being consumed — the vector unit is not
  pipelined), which is precisely the metadata cost the HHT removes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Supported execution backends (see repro.cpu.compiled for the second).
BACKENDS = ("reference", "compiled")


def _default_backend() -> str:
    """Backend selected by the environment, ``reference`` otherwise.

    ``REPRO_BACKEND`` lets the CLI (and CI's second test job) flip every
    CpuConfig constructed in the process — including those built inside
    sweep worker processes, which inherit the environment.
    """
    return os.environ.get("REPRO_BACKEND", "reference")


@dataclass
class LatencyTable:
    """Per-class instruction costs, in cycles (excluding memory time)."""

    int_alu: int = 1
    int_mul: int = 3
    int_div: int = 16
    branch: int = 1
    branch_taken_penalty: int = 1  # 3-stage pipeline refill on taken branch
    jump: int = 2
    scalar_store: int = 1          # posted through a store buffer
    fp_alu: int = 2
    fp_fma: int = 4
    fp_div: int = 16
    vector_config: int = 1         # vsetvli
    vector_int: int = 2
    vector_fp: int = 4             # Table 1: vector arithmetic latency = 4
    vector_reduction_per_elem: int = 1  # extra cycles for ordered reductions
    vector_store_per_elem: int = 1
    load_use: int = 1              # writeback cycle after the memory response
    system: int = 1

    def copy(self) -> "LatencyTable":
        return LatencyTable(**vars(self))

    def to_dict(self) -> dict[str, int]:
        return dict(vars(self))

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "LatencyTable":
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass
class CpuConfig:
    """Configuration of the primary core (Table 1 defaults)."""

    vlmax: int = 8                     # Table 1: vector width (VL) = 8
    frequency_hz: float = 1.1e9        # Table 1: 1.1 GHz
    latencies: LatencyTable = field(default_factory=LatencyTable)
    max_instructions: int = 500_000_000
    # Execution backend: "reference" is the per-instruction interpreter
    # in repro.cpu.core; "compiled" translates basic blocks to
    # specialized closures (repro.cpu.compiled) with bit-identical
    # results.  Timing is backend-independent by contract.
    backend: str = field(default_factory=_default_backend)

    def __post_init__(self) -> None:
        if self.vlmax < 1 or self.vlmax > 64:
            raise ValueError(f"vlmax must be in [1, 64], got {self.vlmax}")
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )

    def to_dict(self) -> dict[str, object]:
        return {
            "vlmax": self.vlmax,
            "frequency_hz": self.frequency_hz,
            "max_instructions": self.max_instructions,
            "backend": self.backend,
            "latencies": self.latencies.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CpuConfig":
        fields_ = dict(data)
        latencies = LatencyTable.from_dict(fields_.pop("latencies", {}))
        return cls(latencies=latencies, **fields_)
