"""Instruction representation and the opcode syntax table.

We model the instruction set behaviourally (no binary encoding): each
instruction is an :class:`Instr` record with symbolic operands.  The
subset covers what Table 1's core provides — RV32I base, M (multiply),
F (single-precision float) and the vector extension operations the SpMV /
SpMSpV kernels need (including the indexed gather ``vluxei32.v`` that the
baseline uses, cf. Section 2's discussion of vector gather instructions).

``SYNTAX`` maps each mnemonic to an operand-pattern name understood by the
assembler; ``INSTRUCTION_CLASS`` groups mnemonics for the timing model and
the energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Instr:
    """One assembled instruction (operand fields unused by an op stay None)."""

    op: str
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    rs3: int | None = None
    imm: int | None = None
    target: int | None = None      # resolved branch/jump target (instruction index)
    label: str | None = None       # unresolved symbolic target (pre-resolution)
    source_line: int = 0           # 1-based line in the assembly source
    text: str = ""                 # original source text, for diagnostics
    meta: bool = False             # marked "[meta]": a metadata-overhead op

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text or self.op


# ---------------------------------------------------------------------------
# Operand-pattern table.  Pattern names are interpreted by the assembler:
#   r3      op rd, rs1, rs2            (integer)
#   i2      op rd, rs1, imm
#   shifti  op rd, rs1, uimm5
#   load    op rd, imm(rs1)
#   store   op rs2, imm(rs1)
#   fload   op fd, imm(rs1)
#   fstore  op fs2, imm(rs1)
#   branch  op rs1, rs2, label
#   u       op rd, imm
#   li      op rd, imm32
#   la      op rd, symbol
#   jal     op rd, label
#   jalr    op rd, imm(rs1)
#   f3      op fd, fs1, fs2
#   f4      op fd, fs1, fs2, fs3
#   fcmp    op rd, fs1, fs2
#   fmvxw   op rd, fs1
#   fmvwx   op fd, rs1
#   vsetvli op rd, rs1, vtype-tokens
#   vload   op vd, (rs1)
#   vstore  op vs3, (rs1)
#   vgather op vd, (rs1), vs2
#   vmacidx op vd, (rs1), vs2, vs3     (indexed gather + MAC, IndexMAC)
#   fpop    op fd, imm                 (SSR stream pop, scalar)
#   vpop    op vd, imm                 (SSR stream pop, vector)
#   v3      op vd, va, vb              (element-wise, our operand order)
#   vred    op vd, vs2, vs1            (ordered reduction)
#   vx      op vd, vs2, rs1
#   vi      op vd, vs2, imm
#   vmvvi   op vd, imm
#   vmvvx   op vd, rs1
#   vfmvfs  op fd, vs2
#   vfmvsf  op vd, fs1
#   vid     op vd
#   none    op
# ---------------------------------------------------------------------------
SYNTAX: dict[str, str] = {}


def _reg(ops: str, pattern: str) -> None:
    for op in ops.split():
        SYNTAX[op] = pattern


# RV32I base integer
_reg("add sub and or xor sll srl sra slt sltu", "r3")
_reg("addi andi ori xori slti sltiu", "i2")
_reg("slli srli srai", "shifti")
_reg("lw lh lhu lb lbu", "load")
_reg("sw sh sb", "store")
_reg("beq bne blt bge bltu bgeu", "branch")
_reg("lui auipc", "u")
_reg("li", "li")
_reg("la", "la")
_reg("jal", "jal")
_reg("jalr", "jalr")
_reg("halt ecall ebreak nopseudo", "none")

# M extension
_reg("mul mulh mulhu mulhsu div divu rem remu", "r3")

# F extension (single precision)
_reg("flw", "fload")
_reg("fsw", "fstore")
_reg("fadd.s fsub.s fmul.s fdiv.s fmin.s fmax.s fsgnj.s fsgnjn.s fsgnjx.s", "f3")
_reg("fmadd.s fmsub.s fnmadd.s fnmsub.s", "f4")
_reg("feq.s flt.s fle.s", "fcmp")
_reg("fmv.x.w fcvt.w.s fcvt.wu.s", "fmvxw")
_reg("fmv.w.x fcvt.s.w fcvt.s.wu", "fmvwx")

# V extension subset
_reg("vsetvli", "vsetvli")
_reg("vle32.v", "vload")
_reg("vse32.v", "vstore")
_reg("vluxei32.v", "vgather")
_reg("vfadd.vv vfsub.vv vfmul.vv vfmacc.vv vadd.vv vsub.vv vmul.vv vand.vv vor.vv vxor.vv", "v3")
_reg("vfredosum.vs vfredusum.vs vredsum.vs", "vred")
_reg("vadd.vx vmul.vx vand.vx vor.vx", "vx")
_reg("vsll.vi vsrl.vi vadd.vi vand.vi", "vi")
_reg("vmv.v.i", "vmvvi")
_reg("vmv.v.x vmv.s.x", "vmvvx")
_reg("vfmv.f.s", "vfmvfs")
_reg("vfmv.s.f vfmv.v.f", "vfmvsf")
_reg("vid.v", "vid")

# Accelerator front-end extensions (repro.accel).  The handlers exist on
# every CPU; executing one without the owning front-end configured is a
# runtime SimulationError, mirroring an illegal-instruction trap.
_reg("fssrpop", "fpop")          # SSR: pop one stream element to fd
_reg("vssrpop.v", "vpop")        # SSR: pop vl stream elements to vd
_reg("vlpidx.v", "vgather")      # IndexMAC: pipelined indexed gather
_reg("vfmacidx", "vmacidx")      # IndexMAC: fused indexed gather + MAC


# ---------------------------------------------------------------------------
# Instruction classes for timing / energy accounting.
# ---------------------------------------------------------------------------
INSTRUCTION_CLASS: dict[str, str] = {}


def _cls(ops: str, klass: str) -> None:
    for op in ops.split():
        INSTRUCTION_CLASS[op] = klass


_cls("add sub and or xor sll srl sra slt sltu addi andi ori xori slti sltiu "
     "slli srli srai lui auipc li la", "int_alu")
_cls("mul mulh mulhu mulhsu", "int_mul")
_cls("div divu rem remu", "int_div")
_cls("lw lh lhu lb lbu flw", "scalar_load")
_cls("sw sh sb fsw", "scalar_store")
_cls("beq bne blt bge bltu bgeu", "branch")
_cls("jal jalr", "jump")
_cls("fadd.s fsub.s fmul.s fmin.s fmax.s fsgnj.s fsgnjn.s fsgnjx.s "
     "feq.s flt.s fle.s fmv.x.w fmv.w.x fcvt.w.s fcvt.wu.s fcvt.s.w fcvt.s.wu",
     "fp_alu")
_cls("fmadd.s fmsub.s fnmadd.s fnmsub.s", "fp_fma")
_cls("fdiv.s", "fp_div")
_cls("vsetvli", "vector_config")
_cls("vle32.v", "vector_load")
_cls("vse32.v", "vector_store")
_cls("vluxei32.v", "vector_gather")
_cls("vfadd.vv vfsub.vv vfmul.vv vfmacc.vv vfredosum.vs vfredusum.vs "
     "vfmv.f.s vfmv.s.f vfmv.v.f", "vector_fp")
_cls("vadd.vv vsub.vv vmul.vv vand.vv vor.vv vxor.vv vredsum.vs vadd.vx "
     "vmul.vx vand.vx vor.vx vsll.vi vsrl.vi vadd.vi vand.vi vmv.v.i "
     "vmv.v.x vmv.s.x vid.v", "vector_int")
_cls("halt ecall ebreak nopseudo", "system")
_cls("fssrpop vssrpop.v", "ssr_pop")
_cls("vlpidx.v", "vector_pgather")
_cls("vfmacidx", "vector_mac_idx")


def instruction_class(op: str) -> str:
    """Timing/energy class for a mnemonic (raises KeyError if unknown)."""
    return INSTRUCTION_CLASS[op]


ALL_MNEMONICS = frozenset(SYNTAX)
