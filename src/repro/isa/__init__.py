"""Behavioural RV32-style instruction set: mnemonics, assembler, programs."""

from .assembler import AssemblerError, assemble
from .encoding import EncodingError, decode, encodable, encode, encode_program, s32
from .instructions import ALL_MNEMONICS, INSTRUCTION_CLASS, SYNTAX, Instr, instruction_class
from .program import Program
from .registers import (
    RegisterError,
    freg_name,
    parse_freg,
    parse_vreg,
    parse_xreg,
    vreg_name,
    xreg_name,
)

__all__ = [
    "AssemblerError",
    "assemble",
    "EncodingError",
    "decode",
    "encodable",
    "encode",
    "encode_program",
    "s32",
    "ALL_MNEMONICS",
    "INSTRUCTION_CLASS",
    "SYNTAX",
    "Instr",
    "instruction_class",
    "Program",
    "RegisterError",
    "parse_xreg",
    "parse_freg",
    "parse_vreg",
    "xreg_name",
    "freg_name",
    "vreg_name",
]
