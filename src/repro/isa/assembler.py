"""Two-pass assembler for the behavioural RV32-style ISA.

Supports labels, comments (``#``, ``//``, ``;``), the operand patterns
declared in :mod:`repro.isa.instructions`, the standard pseudo-instructions
(``li``, ``la``, ``mv``, ``j``, ``ret``, ``beqz`` …) and symbolic
immediates resolved against a caller-supplied symbol table (the kernel
builders pass the data-segment addresses from the memory layout).
"""

from __future__ import annotations

import re

from .instructions import SYNTAX, Instr
from .program import Program
from .registers import RegisterError, parse_freg, parse_vreg, parse_xreg


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_no: int | None = None, line: str = ""):
        loc = f" (line {line_no}: {line.strip()!r})" if line_no else ""
        super().__init__(message + loc)
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.$]*)\s*:\s*(.*)$")
_COMMENT_RE = re.compile(r"(#|//|;).*$")


def _strip_comment(line: str) -> str:
    return _COMMENT_RE.sub("", line)


def _split_operands(rest: str) -> list[str]:
    """Split an operand string on top-level commas, keeping parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in rest:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return [p for p in parts if p]


_MEM_RE = re.compile(r"^(-?[\w.$xXa-fA-F]*)\s*\(\s*([\w.$]+)\s*\)$")


class _Parser:
    """Stateful helper carrying the symbol table and diagnostics context."""

    def __init__(self, symbols: dict[str, int]):
        self.symbols = symbols
        self.line_no = 0
        self.line = ""

    def error(self, msg: str) -> AssemblerError:
        return AssemblerError(msg, self.line_no, self.line)

    def imm(self, token: str) -> int:
        token = token.strip()
        try:
            return int(token, 0)
        except ValueError:
            pass
        if token in self.symbols:
            return int(self.symbols[token])
        raise self.error(f"cannot resolve immediate {token!r}")

    def mem(self, token: str) -> tuple[int, int]:
        """Parse ``imm(rs1)`` -> (imm, xreg)."""
        m = _MEM_RE.match(token.strip())
        if not m:
            raise self.error(f"expected imm(reg) operand, got {token!r}")
        off_txt, base = m.groups()
        off = self.imm(off_txt) if off_txt else 0
        try:
            return off, parse_xreg(base)
        except RegisterError as exc:
            raise self.error(str(exc)) from None

    def xreg(self, token: str) -> int:
        try:
            return parse_xreg(token)
        except RegisterError as exc:
            raise self.error(str(exc)) from None

    def freg(self, token: str) -> int:
        try:
            return parse_freg(token)
        except RegisterError as exc:
            raise self.error(str(exc)) from None

    def vreg(self, token: str) -> int:
        try:
            return parse_vreg(token)
        except RegisterError as exc:
            raise self.error(str(exc)) from None


def _expand_pseudo(op: str, ops: list[str]) -> tuple[str, list[str]]:
    """Rewrite pseudo-instructions into base mnemonics + operands."""
    if op == "nop":
        return "addi", ["x0", "x0", "0"]
    if op == "mv":
        _need(op, ops, 2)
        return "addi", [ops[0], ops[1], "0"]
    if op == "neg":
        _need(op, ops, 2)
        return "sub", [ops[0], "x0", ops[1]]
    if op == "not":
        _need(op, ops, 2)
        return "xori", [ops[0], ops[1], "-1"]
    if op == "seqz":
        _need(op, ops, 2)
        return "sltiu", [ops[0], ops[1], "1"]
    if op == "snez":
        _need(op, ops, 2)
        return "sltu", [ops[0], "x0", ops[1]]
    if op == "j":
        _need(op, ops, 1)
        return "jal", ["x0", ops[0]]
    if op == "call":
        _need(op, ops, 1)
        return "jal", ["ra", ops[0]]
    if op == "jr":
        _need(op, ops, 1)
        return "jalr", ["x0", f"0({ops[0]})"]
    if op == "ret":
        return "jalr", ["x0", "0(ra)"]
    if op == "beqz":
        _need(op, ops, 2)
        return "beq", [ops[0], "x0", ops[1]]
    if op == "bnez":
        _need(op, ops, 2)
        return "bne", [ops[0], "x0", ops[1]]
    if op == "bltz":
        _need(op, ops, 2)
        return "blt", [ops[0], "x0", ops[1]]
    if op == "bgez":
        _need(op, ops, 2)
        return "bge", [ops[0], "x0", ops[1]]
    if op == "blez":
        _need(op, ops, 2)
        return "bge", ["x0", ops[0], ops[1]]
    if op == "bgtz":
        _need(op, ops, 2)
        return "blt", ["x0", ops[0], ops[1]]
    if op == "ble":
        _need(op, ops, 3)
        return "bge", [ops[1], ops[0], ops[2]]
    if op == "bgt":
        _need(op, ops, 3)
        return "blt", [ops[1], ops[0], ops[2]]
    if op == "bleu":
        _need(op, ops, 3)
        return "bgeu", [ops[1], ops[0], ops[2]]
    if op == "bgtu":
        _need(op, ops, 3)
        return "bltu", [ops[1], ops[0], ops[2]]
    if op == "fmv.s":
        _need(op, ops, 2)
        return "fsgnj.s", [ops[0], ops[1], ops[1]]
    if op == "fneg.s":
        _need(op, ops, 2)
        return "fsgnjn.s", [ops[0], ops[1], ops[1]]
    if op == "fabs.s":
        _need(op, ops, 2)
        return "fsgnjx.s", [ops[0], ops[1], ops[1]]
    return op, ops


def _need(op: str, ops: list[str], n: int) -> None:
    if len(ops) != n:
        raise AssemblerError(f"{op} expects {n} operands, got {len(ops)}")


def _parse_instr(p: _Parser, op: str, ops: list[str], text: str) -> Instr:
    pattern = SYNTAX.get(op)
    if pattern is None:
        raise p.error(f"unknown mnemonic {op!r}")
    ins = Instr(op=op, source_line=p.line_no, text=text)

    if pattern == "r3":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.rs2 = p.xreg(ops[0]), p.xreg(ops[1]), p.xreg(ops[2])
    elif pattern == "i2":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.imm = p.xreg(ops[0]), p.xreg(ops[1]), p.imm(ops[2])
    elif pattern == "shifti":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.imm = p.xreg(ops[0]), p.xreg(ops[1]), p.imm(ops[2])
        if not 0 <= ins.imm < 32:
            raise p.error(f"shift amount must be in [0,32), got {ins.imm}")
    elif pattern == "load":
        _check(p, op, ops, 2)
        ins.rd = p.xreg(ops[0])
        ins.imm, ins.rs1 = p.mem(ops[1])
    elif pattern == "store":
        _check(p, op, ops, 2)
        ins.rs2 = p.xreg(ops[0])
        ins.imm, ins.rs1 = p.mem(ops[1])
    elif pattern == "fload":
        _check(p, op, ops, 2)
        ins.rd = p.freg(ops[0])
        ins.imm, ins.rs1 = p.mem(ops[1])
    elif pattern == "fstore":
        _check(p, op, ops, 2)
        ins.rs2 = p.freg(ops[0])
        ins.imm, ins.rs1 = p.mem(ops[1])
    elif pattern == "branch":
        _check(p, op, ops, 3)
        ins.rs1, ins.rs2 = p.xreg(ops[0]), p.xreg(ops[1])
        ins.label = ops[2]
    elif pattern == "u":
        _check(p, op, ops, 2)
        ins.rd, ins.imm = p.xreg(ops[0]), p.imm(ops[1])
    elif pattern in ("li", "la"):
        _check(p, op, ops, 2)
        ins.rd, ins.imm = p.xreg(ops[0]), p.imm(ops[1])
    elif pattern == "jal":
        if len(ops) == 1:  # jal label  (rd = ra)
            ins.rd, ins.label = 1, ops[0]
        else:
            _check(p, op, ops, 2)
            ins.rd, ins.label = p.xreg(ops[0]), ops[1]
    elif pattern == "jalr":
        _check(p, op, ops, 2)
        ins.rd = p.xreg(ops[0])
        ins.imm, ins.rs1 = p.mem(ops[1])
    elif pattern == "f3":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.rs2 = p.freg(ops[0]), p.freg(ops[1]), p.freg(ops[2])
    elif pattern == "f4":
        _check(p, op, ops, 4)
        ins.rd, ins.rs1, ins.rs2, ins.rs3 = (
            p.freg(ops[0]), p.freg(ops[1]), p.freg(ops[2]), p.freg(ops[3])
        )
    elif pattern == "fcmp":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.rs2 = p.xreg(ops[0]), p.freg(ops[1]), p.freg(ops[2])
    elif pattern == "fmvxw":
        _check(p, op, ops, 2)
        ins.rd, ins.rs1 = p.xreg(ops[0]), p.freg(ops[1])
    elif pattern == "fmvwx":
        _check(p, op, ops, 2)
        ins.rd, ins.rs1 = p.freg(ops[0]), p.xreg(ops[1])
    elif pattern == "vsetvli":
        if len(ops) < 2:
            raise p.error(f"{op} expects at least rd, rs1")
        ins.rd, ins.rs1 = p.xreg(ops[0]), p.xreg(ops[1])
        for tok in ops[2:]:
            tok = tok.strip().lower()
            if tok.startswith("e") and tok[1:].isdigit():
                if int(tok[1:]) != 32:
                    raise p.error(f"only SEW=32 is supported, got {tok}")
            elif tok in ("m1", "ta", "tu", "ma", "mu"):
                continue
            else:
                raise p.error(f"unsupported vtype token {tok!r}")
        ins.imm = 32  # SEW
    elif pattern == "vload":
        _check(p, op, ops, 2)
        ins.rd = p.vreg(ops[0])
        off, ins.rs1 = p.mem(ops[1])
        if off != 0:
            raise p.error("vector loads take a plain (reg) address")
    elif pattern == "vstore":
        _check(p, op, ops, 2)
        ins.rs2 = p.vreg(ops[0])
        off, ins.rs1 = p.mem(ops[1])
        if off != 0:
            raise p.error("vector stores take a plain (reg) address")
    elif pattern == "vgather":
        _check(p, op, ops, 3)
        ins.rd = p.vreg(ops[0])
        off, ins.rs1 = p.mem(ops[1])
        if off != 0:
            raise p.error("vector gathers take a plain (reg) address")
        ins.rs2 = p.vreg(ops[2])
    elif pattern == "vmacidx":
        _check(p, op, ops, 4)
        ins.rd = p.vreg(ops[0])
        off, ins.rs1 = p.mem(ops[1])
        if off != 0:
            raise p.error("indexed MACs take a plain (reg) address")
        ins.rs2, ins.rs3 = p.vreg(ops[2]), p.vreg(ops[3])
    elif pattern == "fpop":
        _check(p, op, ops, 2)
        ins.rd, ins.imm = p.freg(ops[0]), p.imm(ops[1])
    elif pattern == "vpop":
        _check(p, op, ops, 2)
        ins.rd, ins.imm = p.vreg(ops[0]), p.imm(ops[1])
    elif pattern == "v3":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.rs2 = p.vreg(ops[0]), p.vreg(ops[1]), p.vreg(ops[2])
    elif pattern == "vred":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.rs2 = p.vreg(ops[0]), p.vreg(ops[1]), p.vreg(ops[2])
    elif pattern == "vx":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.rs2 = p.vreg(ops[0]), p.vreg(ops[1]), p.xreg(ops[2])
    elif pattern == "vi":
        _check(p, op, ops, 3)
        ins.rd, ins.rs1, ins.imm = p.vreg(ops[0]), p.vreg(ops[1]), p.imm(ops[2])
    elif pattern == "vmvvi":
        _check(p, op, ops, 2)
        ins.rd, ins.imm = p.vreg(ops[0]), p.imm(ops[1])
    elif pattern == "vmvvx":
        _check(p, op, ops, 2)
        ins.rd, ins.rs1 = p.vreg(ops[0]), p.xreg(ops[1])
    elif pattern == "vfmvfs":
        _check(p, op, ops, 2)
        ins.rd, ins.rs1 = p.freg(ops[0]), p.vreg(ops[1])
    elif pattern == "vfmvsf":
        _check(p, op, ops, 2)
        ins.rd, ins.rs1 = p.vreg(ops[0]), p.freg(ops[1])
    elif pattern == "vid":
        _check(p, op, ops, 1)
        ins.rd = p.vreg(ops[0])
    elif pattern == "none":
        _check(p, op, ops, 0)
    else:  # pragma: no cover - table and parser kept in sync
        raise p.error(f"unhandled pattern {pattern!r} for {op!r}")
    return ins


def _check(p: _Parser, op: str, ops: list[str], n: int) -> None:
    if len(ops) != n:
        raise p.error(f"{op} expects {n} operands, got {len(ops)}")


def assemble(text: str, symbols: dict[str, int] | None = None, name: str = "program") -> Program:
    """Assemble *text* into a :class:`Program`.

    *symbols* provides values for symbolic immediates (``la a0, m_rows``)
    — typically the data-segment base addresses from the memory layout.
    """
    p = _Parser(dict(symbols or {}))
    instrs: list[Instr] = []
    labels: dict[str, int] = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        p.line_no, p.line = line_no, raw
        # "[meta]" in a comment tags the instruction as metadata overhead
        # (index traversal), used by the profiler's overhead attribution.
        is_meta = "[meta]" in raw
        line = _strip_comment(raw).strip()
        while line:
            m = _LABEL_RE.match(line)
            if m:
                label = m.group(1)
                if label in labels:
                    raise p.error(f"duplicate label {label!r}")
                labels[label] = len(instrs)
                line = m.group(2).strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        op = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        ops = _split_operands(operand_text)
        op, ops = _expand_pseudo(op, ops)
        ins = _parse_instr(p, op, ops, line)
        ins.meta = is_meta
        instrs.append(ins)

    # Second pass: resolve label targets to instruction indices.
    for ins in instrs:
        if ins.label is not None:
            if ins.label not in labels:
                raise AssemblerError(
                    f"undefined label {ins.label!r}", ins.source_line, ins.text
                )
            ins.target = labels[ins.label]

    return Program(name=name, instructions=instrs, labels=labels, source=text)
