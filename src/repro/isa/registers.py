"""Register-name handling for the RV32-style ISA.

Supports numeric names (``x7``, ``f3``, ``v2``) and the standard ABI
aliases (``a0``, ``t1``, ``s2``, ``ra``, ``sp``, ``fa0`` …) so kernels read
like real RISC-V assembly.
"""

from __future__ import annotations

X_ABI = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22,
    "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

F_ABI = {
    "ft0": 0, "ft1": 1, "ft2": 2, "ft3": 3, "ft4": 4,
    "ft5": 5, "ft6": 6, "ft7": 7,
    "fs0": 8, "fs1": 9,
    "fa0": 10, "fa1": 11, "fa2": 12, "fa3": 13,
    "fa4": 14, "fa5": 15, "fa6": 16, "fa7": 17,
    "fs2": 18, "fs3": 19, "fs4": 20, "fs5": 21, "fs6": 22,
    "fs7": 23, "fs8": 24, "fs9": 25, "fs10": 26, "fs11": 27,
    "ft8": 28, "ft9": 29, "ft10": 30, "ft11": 31,
}


class RegisterError(ValueError):
    """Raised when a register name cannot be parsed."""


def _numeric(name: str, prefix: str) -> int | None:
    if name.startswith(prefix) and name[len(prefix):].isdigit():
        n = int(name[len(prefix):])
        if 0 <= n < 32:
            return n
        raise RegisterError(f"register index out of range: {name!r}")
    return None


def parse_xreg(name: str) -> int:
    """Parse an integer register name to its index (0-31)."""
    name = name.strip().lower()
    n = _numeric(name, "x")
    if n is not None:
        return n
    if name in X_ABI:
        return X_ABI[name]
    raise RegisterError(f"not an integer register: {name!r}")


def parse_freg(name: str) -> int:
    """Parse a floating-point register name to its index (0-31)."""
    name = name.strip().lower()
    if name in F_ABI:
        return F_ABI[name]
    n = _numeric(name, "f")
    if n is not None:
        return n
    raise RegisterError(f"not a floating-point register: {name!r}")


def parse_vreg(name: str) -> int:
    """Parse a vector register name to its index (0-31)."""
    name = name.strip().lower()
    n = _numeric(name, "v")
    if n is not None:
        return n
    raise RegisterError(f"not a vector register: {name!r}")


_X_NAMES = [f"x{i}" for i in range(32)]
_F_NAMES = [f"f{i}" for i in range(32)]
_V_NAMES = [f"v{i}" for i in range(32)]


def xreg_name(i: int) -> str:
    return _X_NAMES[i]


def freg_name(i: int) -> str:
    return _F_NAMES[i]


def vreg_name(i: int) -> str:
    return _V_NAMES[i]
