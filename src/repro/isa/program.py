"""Assembled-program container."""

from __future__ import annotations

from dataclasses import dataclass, field

from .instructions import Instr


@dataclass
class Program:
    """An assembled instruction sequence with its label map.

    The program counter is an *instruction index*; the notional byte
    address of instruction ``i`` is ``4 * i`` (RV32 fixed-width).
    """

    name: str
    instructions: list[Instr]
    labels: dict[str, int] = field(default_factory=dict)
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, idx: int) -> Instr:
        return self.instructions[idx]

    def label_address(self, label: str) -> int:
        """Byte address of *label* (index * 4)."""
        return self.labels[label] * 4

    def entry_index(self, label: str | None = None) -> int:
        """Instruction index to start execution from (0 or a label)."""
        if label is None:
            return 0
        return self.labels[label]

    def disassemble(self) -> str:
        """Human-readable listing with label annotations."""
        by_index: dict[int, list[str]] = {}
        for label, idx in self.labels.items():
            by_index.setdefault(idx, []).append(label)
        lines = []
        for i, ins in enumerate(self.instructions):
            for label in by_index.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"  {i * 4:#07x}: {ins.text or ins.op}")
        return "\n".join(lines)

    def static_histogram(self) -> dict[str, int]:
        """Static mnemonic counts (useful for code-size style analyses)."""
        hist: dict[str, int] = {}
        for ins in self.instructions:
            hist[ins.op] = hist.get(ins.op, 0) + 1
        return hist
