"""RV32 binary encoding/decoding for the scalar subset.

The simulator executes instruction *objects*, but a reproduction of a
RISC-V system should still speak the real encoding: this module encodes
RV32I + M + F instructions to their architectural 32-bit words and
decodes them back, so kernels can be dumped as genuine RISC-V machine
code (`encode_program`) and verified against external tooling.

Scope: the scalar subset.  Pseudo-ops that have no single encoding
(``li``/``la`` with full 32-bit immediates, ``halt``) and the vector
extension (whose encodings depend on ratified vtype fields beyond this
model) raise :class:`EncodingError` — callers lower or skip them.
"""

from __future__ import annotations

from .instructions import Instr


class EncodingError(ValueError):
    """Raised when an instruction has no (supported) binary encoding."""


def s32(value: int) -> int:
    """Wrap an int to signed 32-bit two's complement.

    The architectural sign interpretation of a 32-bit word — shared by
    the interpreter (every ALU result) and the instrumentation layer
    (rendering destination-register values in traces).
    """
    return ((value + 0x80000000) & 0xFFFFFFFF) - 0x80000000


def _check_range(value: int, bits: int, name: str, *, signed: bool) -> int:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{name}={value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


# ---------------------------------------------------------------------------
# Format packers
# ---------------------------------------------------------------------------
def _r(funct7: int, rs2: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _i(imm: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    imm = _check_range(imm, 12, "imm", signed=True)
    return (imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def _s(imm: int, rs2: int, rs1: int, funct3: int, opcode: int) -> int:
    imm = _check_range(imm, 12, "imm", signed=True)
    hi, lo = imm >> 5, imm & 0x1F
    return (hi << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (lo << 7) | opcode


def _b(offset: int, rs2: int, rs1: int, funct3: int, opcode: int) -> int:
    if offset % 2:
        raise EncodingError(f"branch offset {offset} must be even")
    imm = _check_range(offset, 13, "branch offset", signed=True)
    return (
        (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
    )


def _u(imm: int, rd: int, opcode: int) -> int:
    imm = _check_range(imm, 20, "imm", signed=False) if imm >= 0 else _check_range(
        imm, 20, "imm", signed=True
    )
    return (imm << 12) | (rd << 7) | opcode


def _j(offset: int, rd: int, opcode: int) -> int:
    if offset % 2:
        raise EncodingError(f"jump offset {offset} must be even")
    imm = _check_range(offset, 21, "jump offset", signed=True)
    return (
        (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | opcode
    )


def _r4(rs3: int, funct2: int, rs2: int, rs1: int, funct3: int, rd: int, opcode: int) -> int:
    return (
        (rs3 << 27) | (funct2 << 25) | (rs2 << 20) | (rs1 << 15)
        | (funct3 << 12) | (rd << 7) | opcode
    )


# ---------------------------------------------------------------------------
# Instruction tables
# ---------------------------------------------------------------------------
_OP = 0b0110011
_OP_IMM = 0b0010011
_LOAD = 0b0000011
_STORE = 0b0100011
_BRANCH = 0b1100011
_LUI = 0b0110111
_AUIPC = 0b0010111
_JAL = 0b1101111
_JALR = 0b1100111
_LOAD_FP = 0b0000111
_STORE_FP = 0b0100111
_OP_FP = 0b1010011
_FMADD = 0b1000011
_FMSUB = 0b1000111
_FNMSUB = 0b1001011
_FNMADD = 0b1001111
_SYSTEM = 0b1110011

_R_OPS = {
    "add": (0b0000000, 0b000), "sub": (0b0100000, 0b000),
    "sll": (0b0000000, 0b001), "slt": (0b0000000, 0b010),
    "sltu": (0b0000000, 0b011), "xor": (0b0000000, 0b100),
    "srl": (0b0000000, 0b101), "sra": (0b0100000, 0b101),
    "or": (0b0000000, 0b110), "and": (0b0000000, 0b111),
    "mul": (0b0000001, 0b000), "mulh": (0b0000001, 0b001),
    "mulhsu": (0b0000001, 0b010), "mulhu": (0b0000001, 0b011),
    "div": (0b0000001, 0b100), "divu": (0b0000001, 0b101),
    "rem": (0b0000001, 0b110), "remu": (0b0000001, 0b111),
}

_I_OPS = {
    "addi": 0b000, "slti": 0b010, "sltiu": 0b011,
    "xori": 0b100, "ori": 0b110, "andi": 0b111,
}

_SHIFT_OPS = {"slli": (0b0000000, 0b001), "srli": (0b0000000, 0b101),
              "srai": (0b0100000, 0b101)}

_LOAD_OPS = {"lb": 0b000, "lh": 0b001, "lw": 0b010, "lbu": 0b100, "lhu": 0b101}
_STORE_OPS = {"sb": 0b000, "sh": 0b001, "sw": 0b010}
_BRANCH_OPS = {"beq": 0b000, "bne": 0b001, "blt": 0b100,
               "bge": 0b101, "bltu": 0b110, "bgeu": 0b111}

_FP_R_OPS = {
    "fadd.s": 0b0000000, "fsub.s": 0b0000100,
    "fmul.s": 0b0001000, "fdiv.s": 0b0001100,
}
_FP_SGNJ = {"fsgnj.s": 0b000, "fsgnjn.s": 0b001, "fsgnjx.s": 0b010}
_FP_MINMAX = {"fmin.s": 0b000, "fmax.s": 0b001}
_FP_CMP = {"fle.s": 0b000, "flt.s": 0b001, "feq.s": 0b010}
_FMA_OPS = {"fmadd.s": _FMADD, "fmsub.s": _FMSUB,
            "fnmsub.s": _FNMSUB, "fnmadd.s": _FNMADD}

_RNE = 0b000  # round-to-nearest-even rounding mode
_DYN = 0b111  # dynamic rounding


def encode(ins: Instr, index: int = 0) -> int:
    """Encode one instruction to its RV32 word.

    *index* is the instruction's position (branch/jump offsets are
    computed from resolved targets: ``(target - index) * 4``).
    """
    op = ins.op
    if op in _R_OPS:
        funct7, funct3 = _R_OPS[op]
        return _r(funct7, ins.rs2, ins.rs1, funct3, ins.rd, _OP)
    if op in _I_OPS:
        return _i(ins.imm, ins.rs1, _I_OPS[op], ins.rd, _OP_IMM)
    if op in _SHIFT_OPS:
        funct7, funct3 = _SHIFT_OPS[op]
        shamt = _check_range(ins.imm, 5, "shamt", signed=False)
        return _r(funct7, shamt, ins.rs1, funct3, ins.rd, _OP_IMM)
    if op in _LOAD_OPS:
        return _i(ins.imm, ins.rs1, _LOAD_OPS[op], ins.rd, _LOAD)
    if op in _STORE_OPS:
        return _s(ins.imm, ins.rs2, ins.rs1, _STORE_OPS[op], _STORE)
    if op in _BRANCH_OPS:
        offset = (ins.target - index) * 4
        return _b(offset, ins.rs2, ins.rs1, _BRANCH_OPS[op], _BRANCH)
    if op == "lui":
        return _u(ins.imm & 0xFFFFF, ins.rd, _LUI)
    if op == "auipc":
        return _u(ins.imm & 0xFFFFF, ins.rd, _AUIPC)
    if op == "jal":
        return _j((ins.target - index) * 4, ins.rd, _JAL)
    if op == "jalr":
        return _i(ins.imm, ins.rs1, 0b000, ins.rd, _JALR)
    if op == "flw":
        return _i(ins.imm, ins.rs1, 0b010, ins.rd, _LOAD_FP)
    if op == "fsw":
        return _s(ins.imm, ins.rs2, ins.rs1, 0b010, _STORE_FP)
    if op in _FP_R_OPS:
        return _r(_FP_R_OPS[op], ins.rs2, ins.rs1, _RNE, ins.rd, _OP_FP)
    if op in _FP_SGNJ:
        return _r(0b0010000, ins.rs2, ins.rs1, _FP_SGNJ[op], ins.rd, _OP_FP)
    if op in _FP_MINMAX:
        return _r(0b0010100, ins.rs2, ins.rs1, _FP_MINMAX[op], ins.rd, _OP_FP)
    if op in _FP_CMP:
        return _r(0b1010000, ins.rs2, ins.rs1, _FP_CMP[op], ins.rd, _OP_FP)
    if op in _FMA_OPS:
        return _r4(ins.rs3, 0b00, ins.rs2, ins.rs1, _RNE, ins.rd, _FMA_OPS[op])
    if op == "fmv.x.w":
        return _r(0b1110000, 0, ins.rs1, 0b000, ins.rd, _OP_FP)
    if op == "fmv.w.x":
        return _r(0b1111000, 0, ins.rs1, 0b000, ins.rd, _OP_FP)
    if op == "fcvt.w.s":
        return _r(0b1100000, 0b00000, ins.rs1, _RNE, ins.rd, _OP_FP)
    if op == "fcvt.wu.s":
        return _r(0b1100000, 0b00001, ins.rs1, _RNE, ins.rd, _OP_FP)
    if op == "fcvt.s.w":
        return _r(0b1101000, 0b00000, ins.rs1, _RNE, ins.rd, _OP_FP)
    if op == "fcvt.s.wu":
        return _r(0b1101000, 0b00001, ins.rs1, _RNE, ins.rd, _OP_FP)
    if op == "ecall":
        return 0x00000073
    if op == "ebreak":
        return 0x00100073
    raise EncodingError(f"no RV32 encoding for {op!r} (pseudo or vector op)")


def encodable(ins: Instr) -> bool:
    """True if :func:`encode` can produce a word for this instruction."""
    try:
        encode(ins, index=ins.target or 0)
        return True
    except EncodingError:
        return False


def encode_program(program, *, skip_unencodable: bool = False) -> list[int]:
    """Encode a whole program; returns one u32 word per instruction.

    With ``skip_unencodable`` the unsupported instructions (``li``,
    ``halt``, vector ops) encode as 0 (an architecturally illegal
    instruction) instead of raising.
    """
    words = []
    for idx, ins in enumerate(program.instructions):
        try:
            words.append(encode(ins, idx))
        except EncodingError:
            if not skip_unencodable:
                raise
            words.append(0)
    return words


# ---------------------------------------------------------------------------
# Decoding (the inverse, for the same subset)
# ---------------------------------------------------------------------------
def _sext(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value ^ mask) - mask


def decode(word: int, index: int = 0) -> Instr:
    """Decode an RV32 word back into an :class:`Instr`.

    Branch/jump targets are resolved relative to *index*.
    """
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == _OP:
        for op, (f7, f3) in _R_OPS.items():
            if (f7, f3) == (funct7, funct3):
                return Instr(op=op, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == _OP_IMM:
        imm = _sext(word >> 20, 12)
        for op, f3 in _I_OPS.items():
            if f3 == funct3:
                return Instr(op=op, rd=rd, rs1=rs1, imm=imm)
        for op, (f7, f3) in _SHIFT_OPS.items():
            if f3 == funct3 and f7 == funct7:
                return Instr(op=op, rd=rd, rs1=rs1, imm=rs2)
    if opcode == _LOAD:
        imm = _sext(word >> 20, 12)
        for op, f3 in _LOAD_OPS.items():
            if f3 == funct3:
                return Instr(op=op, rd=rd, rs1=rs1, imm=imm)
    if opcode == _STORE:
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        for op, f3 in _STORE_OPS.items():
            if f3 == funct3:
                return Instr(op=op, rs1=rs1, rs2=rs2, imm=imm)
    if opcode == _BRANCH:
        imm = _sext(
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1),
            13,
        )
        for op, f3 in _BRANCH_OPS.items():
            if f3 == funct3:
                return Instr(op=op, rs1=rs1, rs2=rs2, target=index + imm // 4)
    if opcode == _LUI:
        return Instr(op="lui", rd=rd, imm=word >> 12)
    if opcode == _AUIPC:
        return Instr(op="auipc", rd=rd, imm=word >> 12)
    if opcode == _JAL:
        imm = _sext(
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1),
            21,
        )
        return Instr(op="jal", rd=rd, target=index + imm // 4)
    if opcode == _JALR and funct3 == 0:
        return Instr(op="jalr", rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if opcode == _LOAD_FP and funct3 == 0b010:
        return Instr(op="flw", rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if opcode == _STORE_FP and funct3 == 0b010:
        imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
        return Instr(op="fsw", rs1=rs1, rs2=rs2, imm=imm)
    if opcode == _OP_FP:
        for op, f7 in _FP_R_OPS.items():
            if f7 == funct7:
                return Instr(op=op, rd=rd, rs1=rs1, rs2=rs2)
        if funct7 == 0b0010000:
            for op, f3 in _FP_SGNJ.items():
                if f3 == funct3:
                    return Instr(op=op, rd=rd, rs1=rs1, rs2=rs2)
        if funct7 == 0b0010100:
            for op, f3 in _FP_MINMAX.items():
                if f3 == funct3:
                    return Instr(op=op, rd=rd, rs1=rs1, rs2=rs2)
        if funct7 == 0b1010000:
            for op, f3 in _FP_CMP.items():
                if f3 == funct3:
                    return Instr(op=op, rd=rd, rs1=rs1, rs2=rs2)
        if funct7 == 0b1110000 and rs2 == 0 and funct3 == 0:
            return Instr(op="fmv.x.w", rd=rd, rs1=rs1)
        if funct7 == 0b1111000 and rs2 == 0 and funct3 == 0:
            return Instr(op="fmv.w.x", rd=rd, rs1=rs1)
        if funct7 == 0b1100000:
            op = "fcvt.w.s" if rs2 == 0 else "fcvt.wu.s"
            return Instr(op=op, rd=rd, rs1=rs1)
        if funct7 == 0b1101000:
            op = "fcvt.s.w" if rs2 == 0 else "fcvt.s.wu"
            return Instr(op=op, rd=rd, rs1=rs1)
    for op, fma_opcode in _FMA_OPS.items():
        if opcode == fma_opcode:
            return Instr(op=op, rd=rd, rs1=rs1, rs2=rs2, rs3=word >> 27)
    if word == 0x00000073:
        return Instr(op="ecall")
    if word == 0x00100073:
        return Instr(op="ebreak")
    raise EncodingError(f"cannot decode word 0x{word:08x}")
