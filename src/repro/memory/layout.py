"""Bump allocator for laying out program data in RAM.

The software side of the paper programs the HHT with *base addresses* of
the CSR arrays and the vector (Section 3.1's MMR list), so experiments
need a deterministic way to place arrays in the simulated RAM.  The
allocator hands out word-aligned, non-overlapping segments and remembers
them by name for later readback.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ram import MemoryAccessError, Ram


@dataclass(frozen=True)
class Segment:
    """A named allocation: ``[base, base + size_bytes)``."""

    name: str
    base: int
    size_bytes: int

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    @property
    def words(self) -> int:
        return self.size_bytes // 4


class MemoryLayout:
    """Word-aligned bump allocator over a RAM's address range."""

    def __init__(self, ram: Ram, *, base: int = 0, align: int = 4):
        if align < 4 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two >= 4, got {align}")
        self.ram = ram
        self.align = align
        self._cursor = self._align_up(base)
        self._segments: dict[str, Segment] = {}

    def _align_up(self, addr: int) -> int:
        mask = self.align - 1
        return (addr + mask) & ~mask

    @property
    def bytes_used(self) -> int:
        return self._cursor

    @property
    def bytes_free(self) -> int:
        return self.ram.size - self._cursor

    def allocate(self, name: str, size_bytes: int) -> Segment:
        """Reserve *size_bytes* (rounded up to alignment) under *name*."""
        if name in self._segments:
            raise ValueError(f"segment {name!r} already allocated")
        if size_bytes < 0:
            raise ValueError(f"size must be non-negative, got {size_bytes}")
        base = self._cursor
        size = self._align_up(size_bytes)
        if base + size > self.ram.size:
            raise MemoryAccessError(
                f"allocating {size} bytes for {name!r} at 0x{base:08x} exceeds "
                f"RAM size {self.ram.size} (increase SystemConfig.ram_bytes)"
            )
        self._cursor = base + size
        seg = Segment(name, base, size)
        self._segments[name] = seg
        return seg

    def place_array(self, name: str, array) -> Segment:
        """Allocate a segment sized for the 32-bit *array* and copy it in."""
        import numpy as np

        arr = np.ascontiguousarray(array)
        seg = self.allocate(name, arr.size * arr.dtype.itemsize)
        if arr.size:
            self.ram.write_array(seg.base, arr)
        return seg

    def __getitem__(self, name: str) -> Segment:
        return self._segments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def segments(self) -> list[Segment]:
        return sorted(self._segments.values(), key=lambda s: s.base)
