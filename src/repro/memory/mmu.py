"""Optional per-core virtual-memory model: TLB + page-table walker.

The paper's system runs bare-metal on physical addresses, but the
ROADMAP's contention studies ask the AraOS question (arxiv 2504.10345):
*what does virtual memory cost a core that feeds a shared memory port?*
This module answers it as a timing overlay:

* Translation is **identity-mapped** — virtual address == physical
  address — so enabling the MMU never changes functional results, only
  timing.  That keeps every kernel and verification path untouched.
* Each core owns a :class:`Tlb` (fully associative, LRU).  A hit costs
  nothing extra: the lookup is folded into the core's address-generation
  pipeline, which is how small in-order cores hide their L0 TLBs.
* A miss triggers a radix page-table walk of ``walk_levels`` *dependent*
  word reads charged as real requests on the shared RAM port (requester
  ``<core>.ptw``), through the L1D when one is configured.  Walks
  therefore contend with the CPUs and the accelerator back-ends for the
  same issue slots — the whole point of modelling them.
* MMIO addresses bypass translation (device windows are treated as an
  untranslated region, the usual bare-metal-plus-MMU arrangement).

The synthetic page tables live in the top ``walk_levels`` pages of RAM:
level ``i``'s entry for a virtual page number is a deterministic word
address in page ``-(i+1)``.  The addresses only matter for bank mapping
and cache tag state, so this is exact enough for timing while requiring
no functional table contents.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..component import SimComponent, StatsDict
from .hierarchy import MemorySystem


@dataclass
class MmuConfig:
    """Geometry of the per-core TLB and its page-table walker."""

    page_bytes: int = 4096
    tlb_entries: int = 16
    walk_levels: int = 2

    def __post_init__(self) -> None:
        if self.page_bytes < 64 or self.page_bytes & (self.page_bytes - 1):
            raise ValueError(
                f"page_bytes must be a power of two >= 64, got {self.page_bytes}"
            )
        if self.tlb_entries < 1:
            raise ValueError(
                f"tlb_entries must be >= 1, got {self.tlb_entries}"
            )
        if self.walk_levels < 1:
            raise ValueError(
                f"walk_levels must be >= 1, got {self.walk_levels}"
            )

    def to_dict(self) -> dict[str, int]:
        return {
            "page_bytes": self.page_bytes,
            "tlb_entries": self.tlb_entries,
            "walk_levels": self.walk_levels,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "MmuConfig":
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    walk_cycles: int = 0
    evictions: int = 0


class Tlb(SimComponent):
    """Fully associative, LRU translation cache with a radix walker.

    Registers under its owning core (``soc.cpuN.tlb.*``).  The walker
    charges its reads through the shared :class:`MemorySystem` with a
    dedicated ``<core>.ptw`` requester label, so per-requester port and
    contention accounting separates walk traffic from demand traffic.
    """

    def __init__(self, config: MmuConfig, mem: MemorySystem,
                 ram_bytes: int, core: str = "cpu"):
        super().__init__("tlb")
        self.config = config
        self.mem = mem
        self.ram_bytes = int(ram_bytes)
        self.core = core
        self.requester = f"{core}.ptw"
        self._page_shift = config.page_bytes.bit_length() - 1
        # Insertion-ordered dict as an LRU: hits re-insert, eviction
        # pops the stalest key.  Deterministic by construction.
        self._entries: dict[int, bool] = {}
        self.counters = TlbStats()
        # Event sink installed by a SimSession when a probe subscribed
        # to tlb_walk events; session-owned lifecycle (reset() leaves
        # it alone), mirroring MemoryPort.probe_sink.
        self.probe_sink = None
        self.publishes_tlb_events = True

    def _reset_local(self) -> None:
        self._entries = {}
        self.counters = TlbStats()

    def _local_stats(self) -> StatsDict:
        c = self.counters
        return {
            "hits": c.hits,
            "misses": c.misses,
            "walks": c.misses,
            "walk_cycles": c.walk_cycles,
            "evictions": c.evictions,
        }

    def _pte_addr(self, vpn: int, level: int) -> int:
        """Deterministic word address of the level-*level* entry.

        Level tables occupy the top pages of RAM; the index is the
        VPN's radix digit for that level (256-entry tables).
        """
        digit = (vpn >> (8 * (self.config.walk_levels - 1 - level))) & 0xFF
        base = self.ram_bytes - (level + 1) * self.config.page_bytes
        return (base + 4 * digit) % self.ram_bytes

    def translate(self, addr: int, cycle: int) -> int:
        """Translate *addr* at *cycle*; return the cycle the (identity)
        physical address is available."""
        entries = self._entries
        vpn = addr >> self._page_shift
        if vpn in entries:
            self.counters.hits += 1
            # LRU touch: re-insert at the young end.
            del entries[vpn]
            entries[vpn] = True
            return cycle
        self.counters.misses += 1
        start = cycle
        for level in range(self.config.walk_levels):
            cycle = self.mem.read(self._pte_addr(vpn, level), cycle,
                                  self.requester)
        self.counters.walk_cycles += cycle - start
        entries[vpn] = True
        if len(entries) > self.config.tlb_entries:
            self.counters.evictions += 1
            del entries[next(iter(entries))]
        sink = self.probe_sink
        if sink is not None:
            sink.tlb_walk(self.core, vpn, self.config.walk_levels,
                          start, cycle)
        return cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Tlb core={self.core!r} entries={len(self._entries)}/"
            f"{self.config.tlb_entries} hits={self.counters.hits} "
            f"misses={self.counters.misses}>"
        )


class TranslatingBus:
    """Identity-mapped translation front for a :class:`Bus`.

    Exposes the exact surface the CPU uses (``load_word`` /
    ``store_word`` / ``load_burst`` / ``store_burst`` plus the ``ram``
    / ``mem`` / ``port`` / ``default_requester`` attributes) and charges
    a TLB lookup per page touched before delegating to the wrapped bus.
    MMIO addresses (``addr >= ram.size``) pass through untranslated.

    Sub-word accesses reach RAM via the exposed ``mem``/``ram``
    attributes and are charged at demand-word granularity by the CPU
    itself; their pages are effectively covered by the neighbouring
    word traffic, so they skip the extra lookup.

    Not a :class:`SimComponent`: the wrapped bus (and the TLB, as a
    core child) already own the registry entries.
    """

    def __init__(self, bus, tlb: Tlb):
        self._bus = bus
        self.tlb = tlb
        self.ram = bus.ram
        self.mem = bus.mem
        self.port = bus.port
        self.default_requester = bus.default_requester
        self._ram_size = bus.ram.size
        self._page_shift = tlb._page_shift

    @property
    def children(self):
        """Walkable like a component (for bare-CPU sink attachment):
        the TLB plus the wrapped bus subtree."""
        return (self.tlb, self._bus)

    # The MMIO device map lives on the wrapped bus.
    def attach_device(self, base: int, size: int, device) -> None:
        self._bus.attach_device(base, size, device)

    def _find_device(self, addr: int):
        return self._bus._find_device(addr)

    def load_word(self, addr: int, cycle: int,
                  requester: str | None = None):
        if addr < self._ram_size:
            cycle = self.tlb.translate(addr, cycle)
        return self._bus.load_word(addr, cycle, requester)

    def store_word(self, addr: int, value: int, cycle: int,
                   requester: str | None = None) -> int:
        if addr < self._ram_size:
            cycle = self.tlb.translate(addr, cycle)
        return self._bus.store_word(addr, value, cycle, requester)

    def _translate_range(self, addr: int, nbytes: int, cycle: int) -> int:
        """Sequential lookups for every page a burst touches."""
        translate = self.tlb.translate
        shift = self._page_shift
        for vpn in range(addr >> shift, (addr + nbytes - 1 >> shift) + 1):
            cycle = translate(vpn << shift, cycle)
        return cycle

    def load_burst(self, addr: int, count: int, cycle: int,
                   requester: str | None = None):
        if count > 0 and addr < self._ram_size:
            cycle = self._translate_range(addr, 4 * count, cycle)
        return self._bus.load_burst(addr, count, cycle, requester)

    def store_burst(self, addr: int, values, cycle: int,
                    requester: str | None = None) -> int:
        if values and addr < self._ram_size:
            cycle = self._translate_range(addr, 4 * len(values), cycle)
        return self._bus.store_burst(addr, values, cycle, requester)
