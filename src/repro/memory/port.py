"""Timing model of a pipelined, optionally banked memory issue port.

Table 1's system has a single on-chip RAM shared by the CPU and the HHT
(Section 3.2: "the BE issues requests to the on-chip RAM via an on-chip
interconnect").  We model the RAM as *pipelined*: each bank accepts at
most one word request per cycle and answers a fixed number of cycles
later.  Both the CPU's load/store unit and the HHT back-end contend for
the same issue slots, which is how memory contention between the two
engines arises.

With ``banks=1`` (the paper's configuration) the port is the classic
single-issue pipe: a request presented at cycle ``t`` issues at
``max(t, next_free_slot)`` and completes ``latency`` cycles after issue.

With ``banks=N`` the RAM is word-interleaved: word address ``w`` lives
in bank ``w % N`` and each bank has its own issue pipe.  Requests to
different banks proceed in parallel; requests to the same bank still
serialise one per cycle.  ``banks=1`` reproduces the single port
bit-identically — the banked path is only taken when ``banks > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..component import SimComponent, StatsDict


@dataclass
class PortStats:
    """Counters accumulated by a :class:`MemoryPort`."""

    requests: int = 0
    queue_cycles: int = 0  # cycles requests spent waiting for an issue slot
    busy_cycles: int = 0   # issue slots consumed (bank-cycles of occupancy)
    by_requester: dict[str, int] = field(default_factory=dict)

    def record(self, requester: str, waited: int) -> None:
        self.requests += 1
        self.queue_cycles += waited
        self.busy_cycles += 1
        self.by_requester[requester] = self.by_requester.get(requester, 0) + 1


class MemoryPort(SimComponent):
    """Pipelined issue port: 1 request/bank/cycle, fixed response latency."""

    def __init__(self, latency: int = 2, name: str = "ram", banks: int = 1):
        if latency < 1:
            raise ValueError(f"latency must be >= 1, got {latency}")
        if banks < 1:
            raise ValueError(f"banks must be >= 1, got {banks}")
        super().__init__(name)
        self.latency = int(latency)
        self.banks = int(banks)
        self._bank_free = [0] * self.banks
        self._bank_requests = [0] * self.banks
        self.counters = PortStats()
        # Event sink installed by a SimSession when a probe subscribed
        # to port_issue events; None costs one test per issue.  The
        # session owns the lifecycle, so reset() leaves it alone.
        self.probe_sink = None

    def _reset_local(self) -> None:
        self._bank_free = [0] * self.banks
        self._bank_requests = [0] * self.banks
        self.counters = PortStats()

    def _local_stats(self) -> StatsDict:
        c = self.counters
        out: StatsDict = {
            "requests": c.requests,
            "queue_cycles": c.queue_cycles,
            "busy_cycles": c.busy_cycles,
        }
        for requester, n in c.by_requester.items():
            out[f"requester.{requester}"] = n
        if self.banks > 1:
            for i, n in enumerate(self._bank_requests):
                out[f"bank{i}.requests"] = n
        return out

    @property
    def next_free_slot(self) -> int:
        """Earliest cycle with every bank free (the single-bank pipe head)."""
        return max(self._bank_free)

    def bank_of(self, addr: int) -> int:
        """Word-interleaved mapping: word address modulo the bank count."""
        return (addr >> 2) % self.banks

    def issue(self, cycle: int, requester: str = "cpu", addr: int = 0) -> int:
        """Issue one word request at *cycle*; return its completion cycle."""
        if self.banks == 1:
            free = self._bank_free
            slot = cycle if cycle >= free[0] else free[0]
            free[0] = slot + 1
            self.counters.record(requester, slot - cycle)
            sink = self.probe_sink
            if sink is not None:
                sink.port_issue(self.name, requester, slot, 1, slot - cycle)
            return slot + self.latency
        bank = (addr >> 2) % self.banks
        free = self._bank_free
        slot = cycle if cycle >= free[bank] else free[bank]
        free[bank] = slot + 1
        self._bank_requests[bank] += 1
        self.counters.record(requester, slot - cycle)
        sink = self.probe_sink
        if sink is not None:
            sink.port_issue(self.name, requester, slot, 1, slot - cycle)
        return slot + self.latency

    def issue_burst(
        self, cycle: int, count: int, requester: str = "cpu",
        addr: int = 0, stride_words: int = 1,
    ) -> int:
        """Issue *count* back-to-back requests; return the completion cycle
        of the last one.

        A burst models a unit-stride vector load/store (or one wide
        memory-side HHT beat per slot when ``stride_words > 1``): beat
        ``i`` wants to issue at ``cycle + i`` and covers the words
        starting at ``addr + 4 * i * stride_words``.  On a banked port
        consecutive beats fall in different banks and can catch up after
        a head-of-burst stall; on the single port they stream one per
        cycle behind the head beat.
        """
        if count <= 0:
            return cycle
        counters = self.counters
        if self.banks == 1:
            free = self._bank_free
            slot = cycle if cycle >= free[0] else free[0]
            free[0] = slot + count
            waited = slot - cycle
            # Every beat waits as long as the head beat: beat i wants
            # cycle+i and issues at slot+i.
            counters.requests += count
            counters.queue_cycles += waited * count
            counters.busy_cycles += count
            counters.by_requester[requester] = (
                counters.by_requester.get(requester, 0) + count
            )
            sink = self.probe_sink
            if sink is not None:
                sink.port_issue(self.name, requester, slot, count, waited)
            return slot + count - 1 + self.latency
        free = self._bank_free
        word0 = addr >> 2
        sink = self.probe_sink
        last_slot = cycle
        for i in range(count):
            bank = (word0 + i * stride_words) % self.banks
            desired = cycle + i
            slot = desired if desired >= free[bank] else free[bank]
            free[bank] = slot + 1
            self._bank_requests[bank] += 1
            counters.record(requester, slot - desired)
            if sink is not None:
                sink.port_issue(self.name, requester, slot, 1, slot - desired)
            if slot > last_slot:
                last_slot = slot
        return last_slot + self.latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MemoryPort {self.name!r} latency={self.latency} "
            f"banks={self.banks} next_free={self.next_free_slot} "
            f"requests={self.counters.requests}>"
        )
