"""Timing model of a pipelined memory issue port.

Table 1's system has a single on-chip RAM shared by the CPU and the HHT
(Section 3.2: "the BE issues requests to the on-chip RAM via an on-chip
interconnect").  We model the RAM as *pipelined*: it accepts at most one
word request per cycle and answers a fixed number of cycles later.  Both
the CPU's load/store unit and the HHT back-end contend for the same issue
slots, which is how memory contention between the two engines arises.

The port is event-driven: a request presented at cycle ``t`` is issued at
``max(t, next_free_slot)`` and completes ``latency`` cycles after issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PortStats:
    """Counters accumulated by a :class:`MemoryPort`."""

    requests: int = 0
    queue_cycles: int = 0  # cycles requests spent waiting for an issue slot
    by_requester: dict[str, int] = field(default_factory=dict)

    def record(self, requester: str, waited: int) -> None:
        self.requests += 1
        self.queue_cycles += waited
        self.by_requester[requester] = self.by_requester.get(requester, 0) + 1


class MemoryPort:
    """Single-issue pipelined port: 1 request/cycle, fixed response latency."""

    def __init__(self, latency: int = 2, name: str = "ram"):
        if latency < 1:
            raise ValueError(f"latency must be >= 1, got {latency}")
        self.latency = int(latency)
        self.name = name
        self.next_free_slot = 0
        self.stats = PortStats()

    def reset(self) -> None:
        self.next_free_slot = 0
        self.stats = PortStats()

    def issue(self, cycle: int, requester: str = "cpu") -> int:
        """Issue one word request at *cycle*; return its completion cycle."""
        slot = cycle if cycle >= self.next_free_slot else self.next_free_slot
        self.next_free_slot = slot + 1
        self.stats.record(requester, slot - cycle)
        return slot + self.latency

    def issue_burst(self, cycle: int, count: int, requester: str = "cpu") -> int:
        """Issue *count* back-to-back word requests; return the completion
        cycle of the last one.

        A burst models a unit-stride vector load/store: the addresses are
        sequential so the requests stream through the pipelined port one
        per cycle.
        """
        if count <= 0:
            return cycle
        slot = cycle if cycle >= self.next_free_slot else self.next_free_slot
        self.next_free_slot = slot + count
        self.stats.record(requester, slot - cycle)
        if count > 1:
            # Remaining beats issue with no extra queueing by construction.
            self.stats.requests += count - 1
            self.stats.by_requester[requester] = (
                self.stats.by_requester.get(requester, 0) + count - 1
            )
        return slot + count - 1 + self.latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MemoryPort {self.name!r} latency={self.latency} "
            f"next_free={self.next_free_slot} requests={self.stats.requests}>"
        )
