"""Memory-system timing front door: flat SRAM or L1D-cached.

Both the CPU's bus and the HHT back-end engines charge their memory
timing through one :class:`MemorySystem`.  With ``cache=None`` (the
Table-1 MCU) every access is a port issue; with an L1D configured (the
Section 3.2 high-performance integration) reads go through the cache —
for the CPU *and* the HHT ("HHT will access the cache for fetching
sparse data") — and writes are written through.
"""

from __future__ import annotations

from ..component import SimComponent
from .cache import L1Cache
from .port import MemoryPort


class MemorySystem(SimComponent):
    """Address-aware timing facade over the port and the optional L1D.

    As a component the facade is *transparent* (empty name): the port
    and cache appear in the registry under their own names
    (``...ram.*`` / ``...l1d.*``) with no extra path segment.
    """

    def __init__(self, port: MemoryPort, cache: L1Cache | None = None):
        super().__init__("")
        self.port = port
        self.cache = cache
        self.add_child(port)
        if cache is not None:
            self.add_child(cache)

    # ------------------------------------------------------------------
    def read(self, addr: int, cycle: int, requester: str) -> int:
        """One word read; returns the completion cycle."""
        if self.cache is None:
            return self.port.issue(cycle, requester, addr)
        return self.cache.read(addr, cycle, requester)

    def write(self, addr: int, cycle: int, requester: str) -> int:
        """One word write (write-through when cached)."""
        if self.cache is None:
            return self.port.issue(cycle, requester, addr)
        return self.cache.write(addr, cycle, requester)

    def read_seq(
        self, addr: int, words: int, cycle: int, requester: str,
        *, words_per_slot: int = 1,
    ) -> int:
        """Sequential read of *words* 32-bit words starting at *addr*.

        Uncached: a pipelined burst (optionally wide — the HHT's
        memory-side interface).  Cached: one cache access per line the
        range touches, issued back to back; the line fills themselves
        serialise on the memory port.
        """
        if words <= 0:
            return cycle
        if self.cache is None:
            slots = (words + words_per_slot - 1) // words_per_slot
            return self.port.issue_burst(
                cycle, slots, requester, addr=addr,
                stride_words=words_per_slot,
            )
        line = self.cache.config.line_bytes
        first = addr - (addr % line)
        last = addr + 4 * words - 1
        completion = cycle
        t = cycle
        while first <= last:
            completion = max(completion, self.cache.read(first, t, requester))
            t += 1  # one lookup per cycle
            first += line
        return completion

    def write_seq(self, addr: int, words: int, cycle: int, requester: str) -> int:
        """Sequential write of *words* words (write-through when cached)."""
        if words <= 0:
            return cycle
        if self.cache is None:
            return self.port.issue_burst(cycle, words, requester, addr=addr)
        completion = cycle
        for i in range(words):
            completion = self.cache.write(addr + 4 * i, cycle + i, requester)
        return completion
