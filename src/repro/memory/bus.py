"""System bus: routes CPU/HHT accesses to RAM or memory-mapped devices.

Address layout (32-bit physical space):

* ``[0, ram_size)`` — on-chip RAM (Table 1: 1 MB by default, configurable).
* ``[MMIO_BASE, ...)`` — memory-mapped devices; the HHT's configuration
  registers and its CPU-side FIFO load addresses live here (Section 3.1:
  "programming is performed by writing to a set of memory-mapped
  registers").

RAM accesses pay for an issue slot on the shared :class:`MemoryPort`;
device accesses are handled by the device, which returns its own
completion cycle (the HHT front-end uses this to stall CPU loads until a
buffer is ready).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Protocol

from ..component import SimComponent
from .cache import L1Cache
from .hierarchy import MemorySystem
from .port import MemoryPort
from .ram import MemoryAccessError, Ram

#: Base of the memory-mapped I/O region.
MMIO_BASE = 0x4000_0000


class MMIODevice(Protocol):
    """Protocol for bus-attached devices (implemented by the HHT FE)."""

    def read_word(self, offset: int, cycle: int) -> tuple[int, int]:
        """Return ``(u32_value, completion_cycle)`` for a load at *offset*."""
        ...

    def write_word(self, offset: int, value: int, cycle: int) -> int:
        """Handle a store; return its completion cycle."""
        ...

    def read_burst(self, offset: int, count: int, cycle: int) -> tuple[list[int], int]:
        """Return ``(values, completion_cycle)`` for a *count*-element
        vector load at *offset* (FIFO semantics for stream devices)."""
        ...


class Bus(SimComponent):
    """Routes word accesses by address and charges port timing for RAM.

    ``default_requester`` labels port traffic when the caller does not —
    the main CPU's bus uses "cpu"; the programmable HHT's helper core
    gets its own bus labelled after its HHT so contention accounting
    stays right.

    As a component the bus is transparent (empty name): its memory
    system's port and cache register directly under the parent's path.
    Devices are *not* bus children — the SoC owns them.
    """

    def __init__(
        self,
        ram: Ram,
        port: MemoryPort,
        default_requester: str = "cpu",
        cache: L1Cache | None = None,
    ):
        super().__init__("")
        self.ram = ram
        self.port = port
        self.mem = MemorySystem(port, cache)
        self.add_child(self.mem)
        self.default_requester = default_requester
        # Sorted by base so lookups can bisect; MMIO pops on the HHT
        # FIFO path hit _find_device once per vector element.
        self._devices: list[tuple[int, int, MMIODevice]] = []
        self._device_bases: list[int] = []

    def attach_device(self, base: int, size: int, device: MMIODevice) -> None:
        """Map *device* at ``[base, base+size)``; must not overlap RAM/devices."""
        if base < MMIO_BASE:
            raise ValueError(
                f"device base 0x{base:08x} must be >= MMIO_BASE 0x{MMIO_BASE:08x}"
            )
        for other_base, other_size, _ in self._devices:
            if base < other_base + other_size and other_base < base + size:
                raise ValueError(
                    f"device at 0x{base:08x} overlaps existing device at 0x{other_base:08x}"
                )
        idx = bisect_right(self._device_bases, base)
        self._devices.insert(idx, (base, size, device))
        self._device_bases.insert(idx, base)

    def _find_device(self, addr: int) -> tuple[int, MMIODevice]:
        idx = bisect_right(self._device_bases, addr) - 1
        if idx >= 0:
            base, size, device = self._devices[idx]
            if addr < base + size:
                return addr - base, device
        raise MemoryAccessError(f"no device mapped at 0x{addr:08x}")

    # ------------------------------------------------------------------
    # Word access with timing
    # ------------------------------------------------------------------
    def load_word(self, addr: int, cycle: int, requester: str | None = None) -> tuple[int, int]:
        """Load a 32-bit word; returns ``(u32_value, completion_cycle)``."""
        requester = requester or self.default_requester
        if addr < self.ram.size:
            completion = self.mem.read(addr, cycle, requester)
            return self.ram.read_u32(addr), completion
        offset, device = self._find_device(addr)
        return device.read_word(offset, cycle)

    def store_word(self, addr: int, value: int, cycle: int, requester: str | None = None) -> int:
        """Store a 32-bit word; returns the completion cycle."""
        requester = requester or self.default_requester
        if addr < self.ram.size:
            completion = self.mem.write(addr, cycle, requester)
            self.ram.write_u32(addr, value)
            return completion
        offset, device = self._find_device(addr)
        return device.write_word(offset, value, cycle)

    def load_burst(
        self, addr: int, count: int, cycle: int, requester: str | None = None
    ) -> tuple[list[int], int]:
        """Unit-stride vector load of *count* words.

        RAM bursts pipeline through the port (one issue slot per beat);
        device bursts (the HHT FIFOs) are delegated to the device so it can
        apply FIFO pop semantics and buffer-ready stalls.
        """
        requester = requester or self.default_requester
        if count <= 0:
            return [], cycle
        if addr < self.ram.size:
            if addr + 4 * count > self.ram.size:
                raise MemoryAccessError(
                    f"burst of {count} words at 0x{addr:08x} exceeds RAM"
                )
            completion = self.mem.read_seq(addr, count, cycle, requester)
            values = [self.ram.read_u32(addr + 4 * i) for i in range(count)]
            return values, completion
        offset, device = self._find_device(addr)
        return device.read_burst(offset, count, cycle)

    def store_burst(
        self, addr: int, values: list[int], cycle: int, requester: str | None = None
    ) -> int:
        """Unit-stride vector store; returns completion of the last beat."""
        requester = requester or self.default_requester
        if not values:
            return cycle
        if addr < self.ram.size:
            if addr + 4 * len(values) > self.ram.size:
                raise MemoryAccessError(
                    f"burst of {len(values)} words at 0x{addr:08x} exceeds RAM"
                )
            completion = self.mem.write_seq(addr, len(values), cycle, requester)
            for i, v in enumerate(values):
                self.ram.write_u32(addr + 4 * i, v)
            return completion
        offset, device = self._find_device(addr)
        completion = cycle
        for i, v in enumerate(values):
            completion = device.write_word(offset + 4 * i, v, completion)
        return completion
