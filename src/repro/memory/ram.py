"""Byte-addressable RAM backing store with fast typed word views.

The functional half of the memory system (the timing half lives in
:mod:`repro.memory.port`).  Storage is one ``uint8`` numpy buffer with
``uint32``/``int32``/``float32`` views sharing the same bytes, so aligned
word accesses — the overwhelmingly common case in the kernels — cost one
numpy scalar index.
"""

from __future__ import annotations

import numpy as np


class MemoryAccessError(Exception):
    """Raised on out-of-range or misaligned accesses."""


class Ram:
    """Functional RAM: little-endian, word-aligned fast paths."""

    def __init__(self, size_bytes: int):
        if size_bytes <= 0 or size_bytes % 4 != 0:
            raise ValueError(f"RAM size must be a positive multiple of 4, got {size_bytes}")
        self.size = int(size_bytes)
        self._bytes = np.zeros(self.size, dtype=np.uint8)
        self._u32 = self._bytes.view(np.uint32)
        self._i32 = self._bytes.view(np.int32)
        self._f32 = self._bytes.view(np.float32)

    # ------------------------------------------------------------------
    # Word access (aligned)
    # ------------------------------------------------------------------
    def _word_index(self, addr: int) -> int:
        if addr & 3:
            raise MemoryAccessError(f"misaligned word access at 0x{addr:08x}")
        if not (0 <= addr < self.size):
            raise MemoryAccessError(f"word access out of range at 0x{addr:08x}")
        return addr >> 2

    def read_u32(self, addr: int) -> int:
        return int(self._u32[self._word_index(addr)])

    def read_i32(self, addr: int) -> int:
        return int(self._i32[self._word_index(addr)])

    def read_f32(self, addr: int) -> float:
        return float(self._f32[self._word_index(addr)])

    def write_u32(self, addr: int, value: int) -> None:
        self._u32[self._word_index(addr)] = np.uint32(value & 0xFFFFFFFF)

    def write_i32(self, addr: int, value: int) -> None:
        self._i32[self._word_index(addr)] = np.int32(value)

    def write_f32(self, addr: int, value: float) -> None:
        self._f32[self._word_index(addr)] = np.float32(value)

    # ------------------------------------------------------------------
    # Sub-word access (for lb/lh/sb/sh completeness)
    # ------------------------------------------------------------------
    def read_u8(self, addr: int) -> int:
        if not (0 <= addr < self.size):
            raise MemoryAccessError(f"byte access out of range at 0x{addr:08x}")
        return int(self._bytes[addr])

    def write_u8(self, addr: int, value: int) -> None:
        if not (0 <= addr < self.size):
            raise MemoryAccessError(f"byte access out of range at 0x{addr:08x}")
        self._bytes[addr] = np.uint8(value & 0xFF)

    def read_u16(self, addr: int) -> int:
        if addr & 1:
            raise MemoryAccessError(f"misaligned halfword access at 0x{addr:08x}")
        if not (0 <= addr + 1 < self.size):
            raise MemoryAccessError(f"halfword access out of range at 0x{addr:08x}")
        return int(self._bytes[addr]) | (int(self._bytes[addr + 1]) << 8)

    def write_u16(self, addr: int, value: int) -> None:
        if addr & 1:
            raise MemoryAccessError(f"misaligned halfword access at 0x{addr:08x}")
        if not (0 <= addr + 1 < self.size):
            raise MemoryAccessError(f"halfword access out of range at 0x{addr:08x}")
        self._bytes[addr] = np.uint8(value & 0xFF)
        self._bytes[addr + 1] = np.uint8((value >> 8) & 0xFF)

    # ------------------------------------------------------------------
    # Bulk array access (used by the loader and result extraction)
    # ------------------------------------------------------------------
    def write_array(self, addr: int, array: np.ndarray) -> None:
        """Copy a 1-D 32-bit numpy array into memory at *addr* (aligned)."""
        arr = np.ascontiguousarray(array)
        if arr.dtype.itemsize != 4:
            raise MemoryAccessError(f"write_array requires a 32-bit dtype, got {arr.dtype}")
        idx = self._word_index(addr)
        if idx + arr.size > self._u32.size:
            raise MemoryAccessError(
                f"array of {arr.size} words at 0x{addr:08x} exceeds RAM size"
            )
        self._u32[idx : idx + arr.size] = arr.view(np.uint32)

    def read_array(self, addr: int, count: int, dtype=np.float32) -> np.ndarray:
        """Read *count* 32-bit words at *addr* as a copy with the given dtype."""
        dtype = np.dtype(dtype)
        if dtype.itemsize != 4:
            raise MemoryAccessError(f"read_array requires a 32-bit dtype, got {dtype}")
        idx = self._word_index(addr)
        if idx + count > self._u32.size:
            raise MemoryAccessError(
                f"array of {count} words at 0x{addr:08x} exceeds RAM size"
            )
        return self._u32[idx : idx + count].view(dtype).copy()

    def fill(self, value: int = 0) -> None:
        self._bytes[:] = np.uint8(value & 0xFF)
