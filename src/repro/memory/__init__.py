"""Memory system: RAM storage, pipelined port timing, bus and layout."""

from .bus import MMIO_BASE, Bus, MMIODevice
from .cache import CacheConfig, CacheStats, L1Cache
from .hierarchy import MemorySystem
from .layout import MemoryLayout, Segment
from .mmu import MmuConfig, Tlb, TlbStats, TranslatingBus
from .port import MemoryPort, PortStats
from .ram import MemoryAccessError, Ram

__all__ = [
    "MMIO_BASE",
    "Bus",
    "MMIODevice",
    "CacheConfig",
    "CacheStats",
    "L1Cache",
    "MemorySystem",
    "MmuConfig",
    "Tlb",
    "TlbStats",
    "TranslatingBus",
    "MemoryLayout",
    "Segment",
    "MemoryPort",
    "PortStats",
    "MemoryAccessError",
    "Ram",
]
