"""Timing-only L1 data cache (the paper's Section 3.2 high-performance
integration: "the BE issues requests to the L1D cache. If the request is
a L1D miss, then the usual cache miss processing is carried out").

The cache models *timing and tag state only* — functional data always
lives in :class:`~repro.memory.ram.Ram`, so there are no coherence
hazards to model.  Policy: set-associative, LRU replacement, read
allocate, write-through / no-write-allocate (stores go straight to the
memory port).

A hit answers in ``hit_latency`` cycles.  A miss evicts the LRU way and
streams the line from memory (one port slot per word), answering when
the fill completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..component import SimComponent, StatsDict
from .port import MemoryPort


@dataclass
class CacheConfig:
    """Geometry and latencies of the L1D."""

    line_bytes: int = 32         # 8 x 32-bit words (one vector register)
    n_sets: int = 64
    assoc: int = 2
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.line_bytes < 4 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(
                f"line_bytes must be a power of two >= 4, got {self.line_bytes}"
            )
        if self.n_sets < 1 or self.n_sets & (self.n_sets - 1):
            raise ValueError(f"n_sets must be a power of two, got {self.n_sets}")
        if self.assoc < 1:
            raise ValueError(f"assoc must be >= 1, got {self.assoc}")
        if self.hit_latency < 1:
            raise ValueError(f"hit_latency must be >= 1, got {self.hit_latency}")

    def to_dict(self) -> dict[str, int]:
        return {
            "line_bytes": self.line_bytes,
            "n_sets": self.n_sets,
            "assoc": self.assoc,
            "hit_latency": self.hit_latency,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "CacheConfig":
        return cls(**{k: int(v) for k, v in data.items()})

    @property
    def size_bytes(self) -> int:
        return self.line_bytes * self.n_sets * self.assoc

    @property
    def line_words(self) -> int:
        return self.line_bytes // 4


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    by_requester: dict[str, list[int]] = field(default_factory=dict)

    def record(self, requester: str, hit: bool) -> None:
        entry = self.by_requester.setdefault(requester, [0, 0])
        if hit:
            self.hits += 1
            entry[0] += 1
        else:
            self.misses += 1
            entry[1] += 1

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class L1Cache(SimComponent):
    """Set-associative, LRU, read-allocate, write-through timing cache."""

    def __init__(self, config: CacheConfig, port: MemoryPort,
                 name: str = "l1d"):
        super().__init__(name)
        self.config = config
        self.port = port
        # Per set: list of [tag, last_used] ways (timing/tag state only).
        self._sets: list[list[list[int]]] = [[] for _ in range(config.n_sets)]
        self._use_counter = 0
        self.counters = CacheStats()

    def _reset_local(self) -> None:
        self._sets = [[] for _ in range(self.config.n_sets)]
        self._use_counter = 0
        self.counters = CacheStats()

    def _local_stats(self) -> StatsDict:
        c = self.counters
        out: StatsDict = {"hits": c.hits, "misses": c.misses,
                          "writes": c.writes}
        for requester, (hits, misses) in c.by_requester.items():
            out[f"requester.{requester}.hits"] = hits
            out[f"requester.{requester}.misses"] = misses
        return out

    # ------------------------------------------------------------------
    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.n_sets, line // self.config.n_sets

    def read(self, addr: int, cycle: int, requester: str = "cpu") -> int:
        """Read access; returns the completion cycle (hit or filled miss)."""
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        self._use_counter += 1
        for way in ways:
            if way[0] == tag:
                way[1] = self._use_counter
                self.counters.record(requester, hit=True)
                return cycle + self.config.hit_latency
        # Miss: fetch the whole line from memory, then answer.
        self.counters.record(requester, hit=False)
        line_base = addr - addr % self.config.line_bytes
        fill_done = self.port.issue_burst(
            cycle, self.config.line_words, requester, addr=line_base
        )
        if len(ways) >= self.config.assoc:
            ways.remove(min(ways, key=lambda w: w[1]))  # evict LRU
        ways.append([tag, self._use_counter])
        return fill_done + self.config.hit_latency

    def write(self, addr: int, cycle: int, requester: str = "cpu") -> int:
        """Write-through, no-write-allocate: the word goes to memory."""
        set_idx, tag = self._locate(addr)
        self._use_counter += 1
        for way in self._sets[set_idx]:
            if way[0] == tag:
                way[1] = self._use_counter  # keep the line warm
                break
        self.counters.writes += 1
        return self.port.issue(cycle, requester, addr=addr)

    def contains(self, addr: int) -> bool:
        set_idx, tag = self._locate(addr)
        return any(way[0] == tag for way in self._sets[set_idx])
