"""Whole-system configuration (the paper's Table 1).

Configurations are *content-addressable*: :meth:`SystemConfig.to_flat`
flattens every field (including the nested CPU, latency-table, HHT and
L1D sub-configs) into a dotted-key dictionary of plain scalars,
:meth:`SystemConfig.from_flat` rebuilds an identical object, and
:meth:`SystemConfig.content_key` hashes the flattened form.  The sweep
engine (:mod:`repro.exec`) uses this to key cached simulation results,
so *any* configuration change — however deep — changes the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..accel import AcceleratorConfig, front_end
from ..core.config import HHTConfig
from ..cpu.timing import CpuConfig, LatencyTable
from ..memory.cache import CacheConfig
from ..memory.mmu import MmuConfig


@dataclass
class SystemConfig:
    """Configuration of the simulated MCU system.

    Defaults reproduce Table 1: a 1.1 GHz RV32 core with vector width 8
    and SEW=32, an ASIC HHT with N=2 buffers of 32 bytes, and 1 MB of
    on-chip RAM.  ``ram_latency`` is the pipelined SRAM response latency
    in cycles; ``ram_bytes`` may be raised for the large DNN layers (the
    paper tiles those instead — see DESIGN.md).
    """

    ram_bytes: int = 1 << 20
    ram_latency: int = 2
    #: Word-interleaved RAM banks; 1 = the paper's single-issue port.
    banks: int = 1
    #: CPU cores sharing the RAM port; 1 = the paper's single-core SoC
    #: (stats under ``soc.cpu.*``).  With N > 1 the cores register as
    #: ``soc.cpu0`` ... ``soc.cpuN-1`` and arbitrate round-robin by
    #: earliest core clock (ties broken by core index).
    n_cores: int = 1
    #: HHT instances attached to the bus ("hht0", "hht1", ... when > 1).
    n_hhts: int = 1
    cpu: CpuConfig = field(default_factory=CpuConfig)
    hht: HHTConfig = field(default_factory=HHTConfig)
    #: Optional L1D (the Section 3.2 high-performance integration);
    #: None = the Table-1 flat-SRAM MCU.
    cache: CacheConfig | None = None
    #: Optional virtual-memory model: a per-core TLB whose page-table
    #: walks are charged on the shared RAM port.  None (the default) is
    #: the paper's bare-metal physical-address machine.
    mmu: MmuConfig | None = None
    #: Generic accelerator section.  None (the default) is the legacy
    #: HHT-only view: ``hht``/``n_hhts`` describe one HHT front-end, and
    #: the flattened form carries no ``accelerators.*`` keys — existing
    #: content keys are bit-identical.  When set, the tuple lists the
    #: attached front-ends in bus-window order and overrides ``n_hhts``
    #: (HHT entries still read their geometry from ``hht``).
    accelerators: tuple[AcceleratorConfig, ...] | None = None

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0 or self.ram_bytes % 4:
            raise ValueError(f"ram_bytes must be a positive multiple of 4")
        if self.ram_latency < 1:
            raise ValueError(f"ram_latency must be >= 1, got {self.ram_latency}")
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1, got {self.banks}")
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.mmu is not None and not isinstance(self.mmu, MmuConfig):
            raise ValueError(f"mmu must be an MmuConfig or None, got {self.mmu!r}")
        if self.n_hhts < 1:
            raise ValueError(f"n_hhts must be >= 1, got {self.n_hhts}")
        if self.accelerators is not None:
            self.accelerators = tuple(self.accelerators)
            for spec in self.accelerators:
                if not isinstance(spec, AcceleratorConfig):
                    raise ValueError(
                        f"accelerators entries must be AcceleratorConfig, "
                        f"got {spec!r}"
                    )
                front_end(spec.kind)  # raises on unregistered kinds
            kinds = [s.kind for s in self.accelerators]
            if len(kinds) != len(set(kinds)):
                raise ValueError(
                    f"duplicate accelerator kinds: {kinds} (raise count= "
                    "instead of repeating an entry)"
                )

    def accelerator_specs(self) -> tuple[AcceleratorConfig, ...]:
        """The effective accelerator list (legacy view = one HHT entry)."""
        if self.accelerators is None:
            return (AcceleratorConfig(kind="hht", count=self.n_hhts),)
        return self.accelerators

    def with_accelerator(self, kind: str, *, count: int = 1,
                         lookahead: int = 4) -> "SystemConfig":
        """A copy whose ``accelerators`` section includes *kind*.

        A no-op copy if the kind is already configured; otherwise the
        new entry is appended after the existing ones (so the legacy
        HHT keeps its bus window and symbols).
        """
        specs = list(self.accelerator_specs())
        if not any(s.kind == kind for s in specs):
            specs.append(
                AcceleratorConfig(kind=kind, count=count, lookahead=lookahead)
            )
        from dataclasses import replace

        return replace(self, accelerators=tuple(specs))

    @classmethod
    def paper_table1(cls, *, vlmax: int = 8, n_buffers: int = 2) -> "SystemConfig":
        """The Table 1 system, with the two swept parameters exposed."""
        cfg = cls()
        cfg.cpu.vlmax = vlmax
        cfg.hht.n_buffers = n_buffers
        # Buffers hold one vector-register's worth of elements; with a
        # scalar CPU the Table-1 32-byte (8-element) buffer is kept.
        cfg.hht.buffer_elems = 8 if vlmax == 1 else vlmax
        return cfg

    # ------------------------------------------------------------------
    # Serialisation / content addressing (used by repro.exec)
    # ------------------------------------------------------------------
    def to_flat(self) -> dict[str, object]:
        """Flatten to a ``{"cpu.latencies.int_alu": 1, ...}`` scalar dict.

        The flattened form is order-independent, JSON-serialisable and
        complete: :meth:`from_flat` reconstructs an equal configuration.
        ``cache`` flattens to a single ``None`` entry when absent, and
        the ``accelerators`` section — a *tuple*, not a mapping — is
        flattened manually to indexed scalar keys
        (``accelerators.0.kind`` ...) and omitted entirely when None, so
        legacy flat dicts and content keys are bit-identical.
        """
        flat: dict[str, object] = {}

        def emit(prefix: str, value: object) -> None:
            if isinstance(value, dict):
                for key in sorted(value):
                    emit(f"{prefix}.{key}" if prefix else str(key), value[key])
            else:
                flat[prefix] = value

        data = asdict(self)
        accelerators = data.pop("accelerators")
        emit("", data)
        if accelerators is not None:
            for i, spec in enumerate(accelerators):
                for key in sorted(spec):
                    flat[f"accelerators.{i}.{key}"] = spec[key]
        return flat

    @classmethod
    def from_flat(cls, flat: dict[str, object]) -> "SystemConfig":
        """Rebuild a configuration from :meth:`to_flat` output."""
        nested: dict = {}
        for key, value in flat.items():
            parts = key.split(".")
            node = nested
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        cpu_fields = dict(nested.get("cpu", {}))
        latencies = LatencyTable.from_dict(cpu_fields.pop("latencies", {}))
        cache_fields = nested.get("cache")
        mmu_fields = nested.get("mmu")
        accel_fields = nested.get("accelerators")
        accelerators = None
        if isinstance(accel_fields, dict):
            accelerators = tuple(
                AcceleratorConfig.from_dict(accel_fields[index])
                for index in sorted(accel_fields, key=int)
            )
        return cls(
            ram_bytes=int(nested.get("ram_bytes", cls.ram_bytes)),
            ram_latency=int(nested.get("ram_latency", cls.ram_latency)),
            banks=int(nested.get("banks", cls.banks)),
            n_cores=int(nested.get("n_cores", cls.n_cores)),
            n_hhts=int(nested.get("n_hhts", cls.n_hhts)),
            cpu=CpuConfig(latencies=latencies, **cpu_fields),
            hht=HHTConfig.from_dict(nested.get("hht", {})),
            cache=(
                CacheConfig.from_dict(cache_fields)
                if isinstance(cache_fields, dict) else None
            ),
            mmu=(
                MmuConfig.from_dict(mmu_fields)
                if isinstance(mmu_fields, dict) else None
            ),
            accelerators=accelerators,
        )

    def content_key(self) -> str:
        """Stable hash of the full configuration (hex digest)."""
        blob = json.dumps(
            self.to_flat(), sort_keys=True, separators=(",", ":"), default=repr
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        """Render the configuration in the shape of the paper's Table 1.

        The accelerator block is derived from the registered front-ends
        (each contributes its ``summary_lines``), so the summary covers
        whatever ``accelerators:`` configures; the legacy HHT-only view
        renders byte-identically to the historic hard-coded table.
        """
        specs = self.accelerator_specs()
        lines = [
            ("Core", "RISCV ISA with 32 bit Floating-point Extensions"),
            ("", f"Frequency = {self.cpu.frequency_hz / 1e9:.1f} GHz"),
            ("", f"Vector width (VL) = {self.cpu.vlmax} Elements"),
            ("", "Element Size (SEW) = 32 bit"),
            ("", f"Vector Arithmetic Latency = {self.cpu.latencies.vector_fp} cycles"),
        ]
        if self.n_cores > 1:
            lines.append(
                ("", f"Cores = {self.n_cores} "
                     "(round-robin shared-port arbitration, "
                     "earliest-clock first)")
            )
        if self.mmu is not None:
            m = self.mmu
            lines.append(
                ("MMU", f"{m.tlb_entries}-entry TLB/core, "
                        f"{m.page_bytes // 1024}KB pages, "
                        f"{m.walk_levels}-level walk on the shared port")
            )
        for spec in specs:
            lines.extend(front_end(spec.kind).summary_lines(self, spec))
        lines += [
            ("RAM", f"Size = {self.ram_bytes // (1 << 20)}MB"
                    if self.ram_bytes >= (1 << 20)
                    else f"Size = {self.ram_bytes // 1024}KB"),
            ("", f"Latency = {self.ram_latency} cycles (pipelined)"),
        ]
        if self.banks > 1:
            lines.append(("", f"Banks = {self.banks} (word-interleaved)"))
        for spec in specs:
            if spec.count > 1:
                label = front_end(spec.kind).instances_label or spec.kind
                lines.append(("", f"{label} instances = {spec.count}"))
        if self.cache is not None:
            lines.append(
                ("L1D", f"{self.cache.size_bytes // 1024}KB, "
                        f"{self.cache.assoc}-way, "
                        f"{self.cache.line_bytes}B lines")
            )
        width = max(len(k) for k, _ in lines)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in lines)
