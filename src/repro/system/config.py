"""Whole-system configuration (the paper's Table 1).

Configurations are *content-addressable*: :meth:`SystemConfig.to_flat`
flattens every field (including the nested CPU, latency-table, HHT and
L1D sub-configs) into a dotted-key dictionary of plain scalars,
:meth:`SystemConfig.from_flat` rebuilds an identical object, and
:meth:`SystemConfig.content_key` hashes the flattened form.  The sweep
engine (:mod:`repro.exec`) uses this to key cached simulation results,
so *any* configuration change — however deep — changes the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..core.config import HHTConfig
from ..cpu.timing import CpuConfig, LatencyTable
from ..memory.cache import CacheConfig


@dataclass
class SystemConfig:
    """Configuration of the simulated MCU system.

    Defaults reproduce Table 1: a 1.1 GHz RV32 core with vector width 8
    and SEW=32, an ASIC HHT with N=2 buffers of 32 bytes, and 1 MB of
    on-chip RAM.  ``ram_latency`` is the pipelined SRAM response latency
    in cycles; ``ram_bytes`` may be raised for the large DNN layers (the
    paper tiles those instead — see DESIGN.md).
    """

    ram_bytes: int = 1 << 20
    ram_latency: int = 2
    #: Word-interleaved RAM banks; 1 = the paper's single-issue port.
    banks: int = 1
    #: HHT instances attached to the bus ("hht0", "hht1", ... when > 1).
    n_hhts: int = 1
    cpu: CpuConfig = field(default_factory=CpuConfig)
    hht: HHTConfig = field(default_factory=HHTConfig)
    #: Optional L1D (the Section 3.2 high-performance integration);
    #: None = the Table-1 flat-SRAM MCU.
    cache: CacheConfig | None = None

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0 or self.ram_bytes % 4:
            raise ValueError(f"ram_bytes must be a positive multiple of 4")
        if self.ram_latency < 1:
            raise ValueError(f"ram_latency must be >= 1, got {self.ram_latency}")
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1, got {self.banks}")
        if self.n_hhts < 1:
            raise ValueError(f"n_hhts must be >= 1, got {self.n_hhts}")

    @classmethod
    def paper_table1(cls, *, vlmax: int = 8, n_buffers: int = 2) -> "SystemConfig":
        """The Table 1 system, with the two swept parameters exposed."""
        cfg = cls()
        cfg.cpu.vlmax = vlmax
        cfg.hht.n_buffers = n_buffers
        # Buffers hold one vector-register's worth of elements; with a
        # scalar CPU the Table-1 32-byte (8-element) buffer is kept.
        cfg.hht.buffer_elems = 8 if vlmax == 1 else vlmax
        return cfg

    # ------------------------------------------------------------------
    # Serialisation / content addressing (used by repro.exec)
    # ------------------------------------------------------------------
    def to_flat(self) -> dict[str, object]:
        """Flatten to a ``{"cpu.latencies.int_alu": 1, ...}`` scalar dict.

        The flattened form is order-independent, JSON-serialisable and
        complete: :meth:`from_flat` reconstructs an equal configuration.
        ``cache`` flattens to a single ``None`` entry when absent.
        """
        flat: dict[str, object] = {}

        def emit(prefix: str, value: object) -> None:
            if isinstance(value, dict):
                for key in sorted(value):
                    emit(f"{prefix}.{key}" if prefix else str(key), value[key])
            else:
                flat[prefix] = value

        emit("", asdict(self))
        return flat

    @classmethod
    def from_flat(cls, flat: dict[str, object]) -> "SystemConfig":
        """Rebuild a configuration from :meth:`to_flat` output."""
        nested: dict = {}
        for key, value in flat.items():
            parts = key.split(".")
            node = nested
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        cpu_fields = dict(nested.get("cpu", {}))
        latencies = LatencyTable.from_dict(cpu_fields.pop("latencies", {}))
        cache_fields = nested.get("cache")
        return cls(
            ram_bytes=int(nested.get("ram_bytes", cls.ram_bytes)),
            ram_latency=int(nested.get("ram_latency", cls.ram_latency)),
            banks=int(nested.get("banks", cls.banks)),
            n_hhts=int(nested.get("n_hhts", cls.n_hhts)),
            cpu=CpuConfig(latencies=latencies, **cpu_fields),
            hht=HHTConfig.from_dict(nested.get("hht", {})),
            cache=(
                CacheConfig.from_dict(cache_fields)
                if isinstance(cache_fields, dict) else None
            ),
        )

    def content_key(self) -> str:
        """Stable hash of the full configuration (hex digest)."""
        blob = json.dumps(
            self.to_flat(), sort_keys=True, separators=(",", ":"), default=repr
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        """Render the configuration in the shape of the paper's Table 1."""
        lines = [
            ("Core", "RISCV ISA with 32 bit Floating-point Extensions"),
            ("", f"Frequency = {self.cpu.frequency_hz / 1e9:.1f} GHz"),
            ("", f"Vector width (VL) = {self.cpu.vlmax} Elements"),
            ("", "Element Size (SEW) = 32 bit"),
            ("", f"Vector Arithmetic Latency = {self.cpu.latencies.vector_fp} cycles"),
            ("ASIC HHT", f"N={self.hht.n_buffers} Buffers"),
            ("", f"Buffer size = {self.hht.buffer_bytes}B"),
            ("RAM", f"Size = {self.ram_bytes // (1 << 20)}MB"
                    if self.ram_bytes >= (1 << 20)
                    else f"Size = {self.ram_bytes // 1024}KB"),
            ("", f"Latency = {self.ram_latency} cycles (pipelined)"),
        ]
        if self.banks > 1:
            lines.append(("", f"Banks = {self.banks} (word-interleaved)"))
        if self.n_hhts > 1:
            lines.append(("", f"HHT instances = {self.n_hhts}"))
        if self.cache is not None:
            lines.append(
                ("L1D", f"{self.cache.size_bytes // 1024}KB, "
                        f"{self.cache.assoc}-way, "
                        f"{self.cache.line_bytes}B lines")
            )
        width = max(len(k) for k, _ in lines)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in lines)
