"""Whole-system configuration (the paper's Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import HHTConfig
from ..cpu.timing import CpuConfig
from ..memory.cache import CacheConfig


@dataclass
class SystemConfig:
    """Configuration of the simulated MCU system.

    Defaults reproduce Table 1: a 1.1 GHz RV32 core with vector width 8
    and SEW=32, an ASIC HHT with N=2 buffers of 32 bytes, and 1 MB of
    on-chip RAM.  ``ram_latency`` is the pipelined SRAM response latency
    in cycles; ``ram_bytes`` may be raised for the large DNN layers (the
    paper tiles those instead — see DESIGN.md).
    """

    ram_bytes: int = 1 << 20
    ram_latency: int = 2
    cpu: CpuConfig = field(default_factory=CpuConfig)
    hht: HHTConfig = field(default_factory=HHTConfig)
    #: Optional L1D (the Section 3.2 high-performance integration);
    #: None = the Table-1 flat-SRAM MCU.
    cache: CacheConfig | None = None

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0 or self.ram_bytes % 4:
            raise ValueError(f"ram_bytes must be a positive multiple of 4")
        if self.ram_latency < 1:
            raise ValueError(f"ram_latency must be >= 1, got {self.ram_latency}")

    @classmethod
    def paper_table1(cls, *, vlmax: int = 8, n_buffers: int = 2) -> "SystemConfig":
        """The Table 1 system, with the two swept parameters exposed."""
        cfg = cls()
        cfg.cpu.vlmax = vlmax
        cfg.hht.n_buffers = n_buffers
        # Buffers hold one vector-register's worth of elements; with a
        # scalar CPU the Table-1 32-byte (8-element) buffer is kept.
        cfg.hht.buffer_elems = 8 if vlmax == 1 else vlmax
        return cfg

    def describe(self) -> str:
        """Render the configuration in the shape of the paper's Table 1."""
        lines = [
            ("Core", "RISCV ISA with 32 bit Floating-point Extensions"),
            ("", f"Frequency = {self.cpu.frequency_hz / 1e9:.1f} GHz"),
            ("", f"Vector width (VL) = {self.cpu.vlmax} Elements"),
            ("", "Element Size (SEW) = 32 bit"),
            ("", f"Vector Arithmetic Latency = {self.cpu.latencies.vector_fp} cycles"),
            ("ASIC HHT", f"N={self.hht.n_buffers} Buffers"),
            ("", f"Buffer size = {self.hht.buffer_bytes}B"),
            ("RAM", f"Size = {self.ram_bytes // (1 << 20)}MB"
                    if self.ram_bytes >= (1 << 20)
                    else f"Size = {self.ram_bytes // 1024}KB"),
            ("", f"Latency = {self.ram_latency} cycles (pipelined)"),
        ]
        if self.cache is not None:
            lines.append(
                ("L1D", f"{self.cache.size_bytes // 1024}KB, "
                        f"{self.cache.assoc}-way, "
                        f"{self.cache.line_bytes}B lines")
            )
        width = max(len(k) for k, _ in lines)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in lines)
