"""System-on-chip composition: CPU + shared RAM + HHT on one bus.

``Soc`` owns the simulated machine and provides the data-placement and
HHT-programming conveniences the kernels and experiment harness use:

* :meth:`load_csr` / :meth:`load_dense_vector` / :meth:`load_sparse_vector`
  place operand arrays in RAM and record their segments;
* :meth:`symbols` exposes the segment base addresses (plus the HHT MMR
  addresses) to the assembler;
* :meth:`run` executes an assembled program and returns a
  :class:`RunResult` with the merged CPU/HHT/port statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accel import BuildContext, front_end
from ..component import (
    SimComponent,
    cache_stats_view,
    hht_stats_view,
    port_requests_view,
    subtree,
)
from ..core.config import HHT_BASE, MMR
from ..core.hht import HHT
from ..cpu.core import Cpu, CpuStats
from ..formats.csr import CSRMatrix
from ..formats.sparse_vector import SparseVector
from ..isa.assembler import assemble
from ..isa.program import Program
from ..memory.bus import Bus
from ..memory.cache import L1Cache
from ..memory.layout import MemoryLayout
from ..memory.mmu import Tlb, TranslatingBus
from ..memory.port import MemoryPort
from ..memory.ram import Ram
from .config import SystemConfig


@dataclass
class RunResult:
    """Outcome of one program execution on the SoC.

    Every counter lives in :attr:`stats`, the flat component-tree
    registry (``{"soc.cpu.cycles": ..., "soc.ram.requests": ...}``).
    The legacy per-component shapes (``cpu_stats``, ``hht_stats``,
    ``port_requests``, ``cache_stats``) are *views* derived from the
    registry — there is no duplicate bookkeeping.
    """

    cycles: int
    instructions: int
    stats: dict[str, int | float]
    frequency_hz: float
    # Payloads published by probes attached to the run (keyed by probe
    # name); empty for plain runs, so summary shapes are unchanged.
    probe_payloads: dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def cpu_stats(self) -> CpuStats:
        """The CPU's counters rebuilt as a :class:`CpuStats`."""
        sub = subtree(self.stats, "soc.cpu")
        out = CpuStats(
            instructions=int(sub.get("instructions", 0)),
            cycles=int(sub.get("cycles", 0)),
            taken_branches=int(sub.get("taken_branches", 0)),
        )
        for key, value in sub.items():
            parts = key.split(".")
            if len(parts) != 2:
                continue
            group, leaf = parts
            if group == "class_counts":
                out.class_counts[leaf] = int(value)
            elif group == "class_cycles":
                out.class_cycles[leaf] = int(value)
            elif group == "pc_counts":
                out.pc_counts[int(leaf)] = int(value)
            elif group == "pc_cycles":
                out.pc_cycles[int(leaf)] = int(value)
        return out

    @property
    def hht_stats(self) -> dict[str, int]:
        """Legacy snapshot dict, summed over every attached HHT."""
        return hht_stats_view(self.stats)

    @property
    def port_requests(self) -> dict[str, int]:
        return port_requests_view(self.stats)

    @property
    def cache_stats(self) -> dict[str, object] | None:
        """L1D statistics when a cache is configured; None on the MCU."""
        return cache_stats_view(self.stats)

    @property
    def cpu_wait_cycles(self) -> int:
        return self.hht_stats.get("cpu_wait_cycles", 0)

    @property
    def cpu_wait_fraction(self) -> float:
        """Fraction of total execution the CPU idled for the HHT (Figs 6-7)."""
        if self.cycles == 0:
            return 0.0
        return self.cpu_wait_cycles / self.cycles

    @property
    def hht_wait_cycles(self) -> int:
        return self.hht_stats.get("hht_wait_cycles", 0)


class Soc(SimComponent):
    """The simulated heterogeneous CPU-HHT system.

    The SoC is the root of the component tree::

        soc
        ├── cpu                      (soc.cpu.*; with n_cores > 1 the
        │   └── tlb, if MMU on        cores register as soc.cpu0.* ...
        │                             soc.cpuN-1.*, each with its own
        │                             soc.cpuK.tlb.* when MMU is on)
        ├── bus (transparent)
        │   └── mem (transparent)
        │       ├── ram port         (soc.ram.*)
        │       └── l1d, if cached   (soc.l1d.*)
        └── accelerators             (soc.hht.*, soc.ssr.*, ... — one
                                      node per configured front-end
                                      instance, indexed when count > 1)

    With ``n_cores > 1`` every core owns a bus *view* sharing the same
    RAM, port, L1D and MMIO device map but labelled with its own
    requester ID (``cpu0`` ... — per-core port/contention accounting
    falls out of the existing per-requester counters).  The single-core
    construction path is literally the pre-refactor one, so ``n_cores=1``
    stays bit-identical.

    ``reset()`` propagates to every node; ``stats()`` flattens every
    counter into the registry a :class:`RunResult` carries.
    """

    def __init__(self, config: SystemConfig | None = None):
        super().__init__("soc")
        self.config = config or SystemConfig()
        self.ram = Ram(self.config.ram_bytes)
        self.port = MemoryPort(
            latency=self.config.ram_latency, banks=self.config.banks
        )
        cache = (
            L1Cache(self.config.cache, self.port)
            if self.config.cache is not None
            else None
        )
        n_cores = self.config.n_cores
        mmu = self.config.mmu
        self.bus = Bus(
            self.ram, self.port,
            default_requester="cpu" if n_cores == 1 else "cpu0",
            cache=cache,
        )
        self.cache = cache
        self.cpus: list[Cpu] = []
        self.tlbs: list[Tlb] = []
        for k in range(n_cores):
            if k == 0:
                bus_k = self.bus
            else:
                # A per-core *view* of the shared memory system: same
                # RAM/port/L1D objects, own requester label.  Not a
                # tree child — the primary bus already registers the
                # port and cache — and the MMIO device map is shared
                # by reference so front-ends attached later are
                # visible from every core.
                bus_k = Bus(self.ram, self.port,
                            default_requester=f"cpu{k}", cache=cache)
                bus_k._devices = self.bus._devices
                bus_k._device_bases = self.bus._device_bases
            core_name = "cpu" if n_cores == 1 else f"cpu{k}"
            cpu_bus = bus_k
            tlb = None
            if mmu is not None:
                tlb = Tlb(mmu, bus_k.mem, self.config.ram_bytes,
                          core=core_name)
                cpu_bus = TranslatingBus(bus_k, tlb)
            core = Cpu(cpu_bus, self.config.cpu, name=core_name)
            if tlb is not None:
                core.add_child(tlb)
                self.tlbs.append(tlb)
            self.cpus.append(core)
            self.add_child(core)
        self.cpu = self.cpus[0]
        self.add_child(self.bus)
        self.layout = MemoryLayout(self.ram, base=0x100)
        self._symbols: dict[str, int] = {}
        # Accelerator front-ends, built from the config's (possibly
        # implicit) accelerators section through the registry.  MMIO
        # windows are assigned from a cursor starting at the legacy HHT
        # base, so the single-HHT system keeps the paper's addresses,
        # names ("hht" component, "hht" port requester) and unprefixed
        # MMR symbols; extra instances of a kind get an index each, with
        # the first instance keeping the unprefixed symbols.
        self.accelerators: list[SimComponent] = []
        mmio_cursor = HHT_BASE
        for spec in self.config.accelerator_specs():
            fe = front_end(spec.kind)
            for i in range(spec.count):
                name = spec.kind if spec.count == 1 else f"{spec.kind}{i}"
                ctx = BuildContext(
                    config=self.config,
                    spec=spec,
                    index=i,
                    name=name,
                    symbol_prefix=spec.kind if i == 0 else f"{spec.kind}{i}",
                    mmio_base=mmio_cursor,
                    ram=self.ram,
                    bus=self.bus,
                    mem=self.bus.mem,
                    cpu=self.cpu,
                    add_component=self._add_accelerator,
                    symbols=self._symbols,
                )
                claimed = fe.build(ctx)
                if claimed:
                    # Keep legacy spacing: every window spans at least
                    # one HHT region so pre-refactor addresses hold.
                    mmio_cursor += max(int(claimed), MMR.REGION_SIZE)
        self.hhts: list[HHT] = [
            comp for comp in self.accelerators if isinstance(comp, HHT)
        ]
        self.hht = self.hhts[0] if self.hhts else None

    def _add_accelerator(self, component: SimComponent) -> None:
        """Build-context callback: adopt a front-end's component."""
        self.add_child(component)
        self.accelerators.append(component)

    # ------------------------------------------------------------------
    # Data placement
    # ------------------------------------------------------------------
    def place(self, name: str, array: np.ndarray) -> int:
        """Place a 32-bit array in RAM; returns its base address."""
        seg = self.layout.place_array(name, array)
        self._symbols[name] = seg.base
        return seg.base

    def allocate(self, name: str, size_bytes: int) -> int:
        seg = self.layout.allocate(name, size_bytes)
        self._symbols[name] = seg.base
        return seg.base

    def load_csr(self, matrix: CSRMatrix, prefix: str = "m") -> dict[str, int]:
        """Place a CSR matrix's three arrays; returns their base addresses."""
        bases = {
            f"{prefix}_rows": self.place(f"{prefix}_rows", matrix.rows),
            f"{prefix}_cols": self.place(f"{prefix}_cols", matrix.cols),
            f"{prefix}_vals": self.place(f"{prefix}_vals", matrix.vals),
        }
        self._symbols[f"{prefix}_num_rows"] = matrix.nrows
        self._symbols[f"{prefix}_num_cols"] = matrix.ncols
        self._symbols[f"{prefix}_nnz"] = matrix.nnz
        return bases

    def load_dense_vector(self, v: np.ndarray, name: str = "v") -> int:
        return self.place(name, np.ascontiguousarray(v, dtype=np.float32))

    def load_coo_image(self, matrix, prefix: str = "m") -> dict[str, int]:
        """Place a row-major-sorted COO image (programmable-HHT firmware)."""
        sorted_coo = matrix.sorted_row_major()
        bases = {
            f"{prefix}_row_indices": self.place(
                f"{prefix}_row_indices", sorted_coo.row_indices
            ),
            f"{prefix}_col_indices": self.place(
                f"{prefix}_col_indices", sorted_coo.col_indices
            ),
            f"{prefix}_vals": self.place(f"{prefix}_vals", sorted_coo.vals),
        }
        self._symbols[f"{prefix}_num_rows"] = matrix.nrows
        self._symbols[f"{prefix}_num_cols"] = matrix.ncols
        self._symbols[f"{prefix}_nnz"] = matrix.nnz
        return bases

    def load_bitvector_image(self, matrix, prefix: str = "m") -> dict[str, int]:
        """Place a bit-vector image: packed bitmap words + packed values.

        The bit-vector firmware requires ``ncols % 32 == 0`` so rows own
        whole bitmap words.
        """
        if matrix.ncols % 32:
            raise ValueError(
                f"bit-vector firmware needs ncols % 32 == 0, got {matrix.ncols}"
            )
        bases = {
            f"{prefix}_bitmap": self.place(f"{prefix}_bitmap", matrix.bitmap_words),
            f"{prefix}_vals": self.place(f"{prefix}_vals", matrix.vals),
        }
        self._symbols[f"{prefix}_num_rows"] = matrix.nrows
        self._symbols[f"{prefix}_num_cols"] = matrix.ncols
        return bases

    def load_smash_image(self, matrix, prefix: str = "m") -> dict[str, int]:
        """Place a two-level SMASH image (fanout 32) for the firmware."""
        if matrix.depth != 2 or matrix.fanout != 32:
            raise ValueError(
                "SMASH firmware supports depth=2, fanout=32 images; got "
                f"depth={matrix.depth}, fanout={matrix.fanout}"
            )
        if matrix.ncols % 32:
            raise ValueError(
                f"SMASH firmware needs ncols % 32 == 0, got {matrix.ncols}"
            )
        l0, l1 = matrix.packed_levels()
        bases = {
            f"{prefix}_l0": self.place(f"{prefix}_l0", l0),
            f"{prefix}_l1": self.place(f"{prefix}_l1", l1),
            f"{prefix}_vals": self.place(f"{prefix}_vals", matrix.vals),
        }
        self._symbols[f"{prefix}_num_rows"] = matrix.nrows
        self._symbols[f"{prefix}_num_cols"] = matrix.ncols
        return bases

    def load_sparse_vector(self, sv: SparseVector, prefix: str = "sv") -> dict[str, int]:
        """Place indices, padded values and the position map (Section 3's
        SpMSpV metadata); returns the base addresses."""
        bases = {
            f"{prefix}_idx": self.place(f"{prefix}_idx", sv.indices),
            f"{prefix}_vpad": self.place(f"{prefix}_vpad", sv.padded_values()),
            f"{prefix}_map": self.place(f"{prefix}_map", sv.position_map()),
        }
        self._symbols[f"{prefix}_nnz"] = sv.nnz
        return bases

    def allocate_output(self, n: int, name: str = "y") -> int:
        return self.allocate(name, n * 4)

    def define_symbol(self, name: str, value: int) -> int:
        """Define a bare assembler symbol (e.g. a per-core row bound)."""
        self._symbols[name] = int(value)
        return int(value)

    @property
    def symbols(self) -> dict[str, int]:
        """Assembler symbol table: data segments + HHT register addresses."""
        return dict(self._symbols)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def assemble(self, text: str, name: str = "kernel") -> Program:
        return assemble(text, symbols=self.symbols, name=name)

    def run(self, program: Program, entry: int | str | None = None,
            probes: tuple = ()) -> RunResult:
        """Execute *program* from reset; ``probes`` attach instrumentation
        (see :mod:`repro.instrument`) whose payloads ride home on the
        result.

        With ``n_cores > 1`` every core runs *program* in one
        interleaved session; a core starts at the ``core{k}`` label when
        the program defines one (the row-partitioned kernels do),
        otherwise at the common *entry*.  ``cycles`` is then the slowest
        core's clock and ``instructions`` the total retired.
        """
        from ..instrument.session import MultiCoreSession, SimSession

        self.reset()  # whole component tree: CPU, port, cache tags, HHTs
        if len(self.cpus) > 1:
            session = MultiCoreSession(
                self.cpus, program, entry=entry, probes=probes, system=self
            )
        else:
            session = SimSession(
                self.cpu, program, entry=entry, probes=probes, system=self
            )
        counters = session.run()
        return RunResult(
            cycles=counters.cycles,
            instructions=counters.instructions,
            stats=self.stats(),
            frequency_hz=self.config.cpu.frequency_hz,
            probe_payloads=session.payloads(),
        )

    def read_output(self, name: str, count: int, dtype=np.float32) -> np.ndarray:
        seg = self.layout[name]
        return self.ram.read_array(seg.base, count, dtype)
