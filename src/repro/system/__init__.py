"""SoC composition and run infrastructure."""

from .config import SystemConfig
from .soc import RunResult, Soc

__all__ = ["SystemConfig", "RunResult", "Soc"]
