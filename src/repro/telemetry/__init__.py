"""Telemetry layer: trace export, time-series sampling, bench harness.

Built on the :mod:`repro.instrument` probe/session layer — everything
here is a probe or a consumer of probe payloads, so runs without
telemetry attached stay bit-identical and pay nothing.
"""

from .bench import (
    BENCH_SCHEMA,
    DEFAULT_BENCH_SIZE,
    DEFAULT_THRESHOLD,
    collect_bench,
    compare_bench,
    load_bench,
    write_bench,
)
from .chrome_trace import (
    CHROME_TRACE_SCHEMA,
    ChromeTraceProbe,
    TrackTable,
    write_chrome_trace,
)
from .sampler import (
    SAMPLER_SCHEMA,
    SamplerProbe,
    sampler_to_csv,
    write_sampler_csv,
)

__all__ = [
    "BENCH_SCHEMA",
    "CHROME_TRACE_SCHEMA",
    "SAMPLER_SCHEMA",
    "DEFAULT_BENCH_SIZE",
    "DEFAULT_THRESHOLD",
    "ChromeTraceProbe",
    "SamplerProbe",
    "TrackTable",
    "collect_bench",
    "compare_bench",
    "load_bench",
    "sampler_to_csv",
    "write_bench",
    "write_chrome_trace",
    "write_sampler_csv",
]
