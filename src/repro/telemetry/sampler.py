"""Cyclic time-series sampling of the flat stats registry.

:class:`SamplerProbe` snapshots the :class:`~repro.component.SimComponent`
stats registry every ``every`` simulated cycles through the session's
cyclic-sampling path (folded into the run loop's existing budget
compare — no per-instruction Python call or attribute load, which
keeps the probe inside the 5% probe-hook CI gate).  The payload is
*columnar*: one ``cycle`` axis plus
one value list per registry key, ready for dataframe/plot ingestion, and
two derived series for the paper's temporal story:

* ``cpu_wait_fraction`` — cumulative HHT-induced CPU wait over the total
  cycle count at each sample (Figs. 6-7 as a trajectory, not an endpoint);
* ``buffered_elements`` — elements the back-end has staged but the CPU
  has not yet consumed (buffer occupancy: fills times the buffer element
  count, minus elements supplied).

A sample is always taken at session start and at session end, so the
series brackets the run even when it is shorter than one stride.
"""

from __future__ import annotations

import io
from pathlib import Path

from ..component import hht_stats_view
from ..instrument.probes import Probe

#: Schema tag carried in the payload (bump on incompatible changes).
SAMPLER_SCHEMA = "repro-sampler/1"


class SamplerProbe(Probe):
    """Snapshot the component-tree stats registry every N cycles.

    ``prefixes`` optionally restricts the recorded keys (e.g.
    ``("soc.hht", "soc.ram")``); the derived series always use the full
    registry, so filtering only trims the exported columns.
    """

    name = "sampler"

    def __init__(self, every: int = 1024,
                 prefixes: tuple[str, ...] | None = None):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.sample_every = int(every)
        self.prefixes = tuple(prefixes) if prefixes else None
        self._rows: list[tuple[int, dict]] = []
        self._root = None
        self._buffer_elems = 0

    # -- events --------------------------------------------------------
    def on_session_start(self, session) -> None:
        self._root = (
            session.system if session.system is not None else session.cpu
        )
        config = getattr(self._root, "config", None)
        hht_config = getattr(config, "hht", None)
        self._buffer_elems = getattr(hht_config, "buffer_elems", 0)
        self._snap(session.cpu.cycle)

    def on_sample(self, session, cycle: int) -> None:
        self._snap(cycle)

    def on_session_end(self, session) -> None:
        cycle = session.cpu.cycle
        if not self._rows or self._rows[-1][0] != cycle:
            self._snap(cycle)

    def _snap(self, cycle: int) -> None:
        self._rows.append((cycle, self._root.stats()))

    # -- result --------------------------------------------------------
    def payload(self) -> dict:
        cycles = [c for c, _ in self._rows]
        keys: dict[str, None] = {}  # ordered union across samples
        for _, row in self._rows:
            for key in row:
                keys.setdefault(key)
        series = {
            key: [row.get(key, 0) for _, row in self._rows]
            for key in keys
            if self.prefixes is None or key.startswith(self.prefixes)
        }
        wait_fraction = []
        buffered = []
        for cycle, row in self._rows:
            hht = hht_stats_view(row)
            wait_fraction.append(
                hht["cpu_wait_cycles"] / cycle if cycle else 0.0
            )
            staged = (
                hht["buffers_filled"] * self._buffer_elems
                - hht["elements_supplied"]
            )
            buffered.append(max(0, staged))
        return {
            "schema": SAMPLER_SCHEMA,
            "every": self.sample_every,
            "cycle": cycles,
            "series": series,
            "derived": {
                "cpu_wait_fraction": wait_fraction,
                "buffered_elements": buffered,
            },
        }


def sampler_to_csv(payload: dict) -> str:
    """Render a :meth:`SamplerProbe.payload` as CSV text.

    Columns: ``cycle``, the derived series (``derived.<name>``), then
    every registry key in sorted order.
    """
    derived = payload["derived"]
    series = payload["series"]
    columns = (
        [f"derived.{name}" for name in sorted(derived)] + sorted(series)
    )
    out = io.StringIO()
    out.write(",".join(["cycle"] + columns) + "\n")
    for i, cycle in enumerate(payload["cycle"]):
        values = [str(cycle)]
        for name in sorted(derived):
            values.append(repr(derived[name][i]))
        for key in sorted(series):
            values.append(repr(series[key][i]))
        out.write(",".join(values) + "\n")
    return out.getvalue()


def write_sampler_csv(payload: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(sampler_to_csv(payload))
    return path
