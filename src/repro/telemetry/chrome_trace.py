"""Chrome-trace / Perfetto export of a simulated run.

:class:`ChromeTraceProbe` subscribes to every event the instrumentation
layer publishes and maps them onto named tracks in the trace-event JSON
format (the ``{"traceEvents": [...]}`` schema both ``chrome://tracing``
and https://ui.perfetto.dev open directly):

* ``cpu`` — one complete (``"X"``) slice per retired instruction,
  ``ts``/``dur`` in cycles; a multi-core session gets one named track
  per core (``cpu0``, ``cpu1``, …) instead, each carrying only that
  core's instructions;
* ``<core>.tlb`` — when the MMU is on, one slice per TLB miss spanning
  the page-table walk (``dur`` = walk cycles on the shared port);
* ``<hht>.backend`` — an instant event per back-end buffer fill, plus a
  counter (``"C"``) track per stream with the unconsumed element count
  (buffer occupancy over time);
* ``<hht>.fifo`` — one slice per CPU FIFO pop, ``dur`` = the stall the
  CPU paid waiting for data (the paper's CPU-wait time, visible as
  gaps/slices against the instruction track);
* ``ram.<requester>`` — one slice per memory-port grant, ``ts`` = issue
  slot, ``dur`` = beats occupied, so CPU/HHT port interleaving and
  contention are visible per requester.

One simulated cycle is exported as one microsecond of trace time (the
trace-event ``ts`` unit), so Perfetto's timeline reads directly in
cycles.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..instrument.probes import Probe

#: Schema tag carried in ``otherData`` (bump on incompatible changes).
CHROME_TRACE_SCHEMA = "repro-chrome-trace/1"

_PID = 1  # one simulated process: the SoC


class TrackTable:
    """Track-name → ``tid`` allocation for trace-event documents.

    Tracks are numbered in first-use order, and each allocation records
    the matching ``thread_name`` metadata event so viewers label the
    track.  Shared by :class:`ChromeTraceProbe` (per-run hardware
    traces) and :func:`repro.obs.trace.sweep_trace` (per-sweep worker
    traces).
    """

    def __init__(self, *, pid: int = _PID):
        self.pid = pid
        self._tids: dict[str, int] = {}
        #: ``thread_name`` metadata events, one per allocated track.
        self.meta: list[dict] = []

    def tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self.meta.append({
                "name": "thread_name", "ph": "M", "pid": self.pid,
                "tid": tid, "args": {"name": track},
            })
        return tid

    def __len__(self) -> int:
        return len(self._tids)


class ChromeTraceProbe(Probe):
    """Record every published event as Chrome trace-event JSON.

    ``limit`` caps the number of *instruction* slices recorded (memory
    guard for long runs); memory-side events are never dropped, and the
    number of dropped instructions is reported in ``otherData`` so a
    truncated trace is never mistaken for a short run.
    """

    name = "chrome_trace"

    def __init__(self, *, limit: int | None = None):
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        self.limit = limit
        self._events: list[dict] = []
        self._tracks = TrackTable()
        self._instructions = 0
        self.dropped_instructions = 0
        self._program = ""
        # The track instruction slices land on: "cpu" for a single-core
        # session; a multi-core session switches it via on_core_select
        # before each core's slices.
        self._cpu_track = "cpu"

    # -- track bookkeeping ---------------------------------------------
    def _tid(self, track: str) -> int:
        return self._tracks.tid(track)

    # -- events --------------------------------------------------------
    def on_session_start(self, session) -> None:
        self._program = session.program.name
        # The instruction track(s) always come first: "cpu" for a
        # single-core session, one track per core for a multi-core one.
        for track in getattr(session, "cores", None) or ("cpu",):
            self._tid(track)

    def on_core_select(self, core) -> None:
        self._cpu_track = core

    def on_instruction(self, pc, ins, cycle_start, cycle_end) -> None:
        if self.limit is not None and self._instructions >= self.limit:
            self.dropped_instructions += 1
            return
        self._instructions += 1
        self._events.append({
            "name": ins.op, "cat": "cpu", "ph": "X",
            "ts": cycle_start, "dur": cycle_end - cycle_start,
            "pid": _PID, "tid": self._tid(self._cpu_track),
            "args": {"pc": pc, "text": ins.text or ins.op},
        })

    def on_tlb_walk(self, core, vpn, levels, cycle_start, cycle_end) -> None:
        self._events.append({
            "name": "ptw", "cat": "tlb", "ph": "X",
            "ts": cycle_start, "dur": cycle_end - cycle_start,
            "pid": _PID, "tid": self._tid(f"{core}.tlb"),
            "args": {"vpn": vpn, "levels": levels},
        })

    def on_buffer_fill(self, engine) -> None:
        hht = engine.requester
        occupancy = {
            name: stream.unconsumed for name, stream in engine.streams.items()
        }
        self._events.append({
            "name": "buffer fill", "cat": "hht", "ph": "i", "s": "t",
            "ts": engine.time, "pid": _PID,
            "tid": self._tid(f"{hht}.backend"),
            "args": {
                "buffers_filled": engine.buffers_filled,
                "unconsumed": dict(occupancy),
            },
        })
        # Counter track: per-stream unconsumed elements (occupancy).
        self._events.append({
            "name": f"{hht} buffered elems", "cat": "hht", "ph": "C",
            "ts": engine.time, "pid": _PID, "args": occupancy,
        })

    def on_fifo_read(self, hht, stream, cycle, wait, count) -> None:
        self._events.append({
            "name": f"pop {stream}", "cat": "fifo", "ph": "X",
            "ts": cycle, "dur": wait,
            "pid": _PID, "tid": self._tid(f"{hht}.fifo"),
            "args": {"count": count, "wait": wait},
        })

    def on_port_issue(self, port, requester, slot, count, waited) -> None:
        self._events.append({
            "name": f"{port} issue", "cat": "port", "ph": "X",
            "ts": slot, "dur": count,
            "pid": _PID, "tid": self._tid(f"{port}.{requester}"),
            "args": {"beats": count, "waited": waited},
        })

    # -- result --------------------------------------------------------
    def payload(self) -> dict:
        """The complete trace document (``{"traceEvents": [...]}``).

        Events are sorted by timestamp (stable, so simultaneous events
        keep emission order), which makes ``ts`` monotonic within every
        track — the invariant the tests pin.
        """
        process_meta = [{
            "name": "process_name", "ph": "M", "pid": _PID,
            "args": {"name": f"soc: {self._program}" if self._program
                     else "soc"},
        }]
        events = (
            process_meta + self._tracks.meta
            + sorted(self._events, key=lambda e: e["ts"])
        )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": CHROME_TRACE_SCHEMA,
                "program": self._program,
                "clock": "1 simulated cycle = 1us of trace time",
                "instructions": self._instructions,
                "dropped_instructions": self.dropped_instructions,
            },
        }


def write_chrome_trace(payload: dict, path: str | Path) -> Path:
    """Write a :meth:`ChromeTraceProbe.payload` document to *path*."""
    path = Path(path)
    path.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
    return path
