"""Machine-readable bench harness: the repo's perf trajectory contract.

``repro bench`` runs the headline suite — the SpMV/SpMSpV sweeps behind
figures 4/5 (geomean speedups) and 6/7 (CPU-wait fractions) plus the
host-side interpreter throughput — and writes a schema-versioned JSON
document (``BENCH_PR5.json`` at the repo top level is the committed
baseline).  ``repro bench --compare <baseline.json>`` re-measures and
exits nonzero when any *gated* metric regresses by more than the
threshold, which is the standing CI gate every later perf PR diffs
against.

Metric entries carry a ``direction``:

* ``"higher"`` / ``"lower"`` — gated; a move in the bad direction beyond
  the threshold is a regression (simulated metrics are deterministic, so
  any delta at all means the timing model changed);
* ``"info"`` — recorded but never gated (host-machine-dependent numbers
  like interpreter throughput).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path

#: Bench document schema (bump on incompatible layout changes).
#: /2: the suite block records the execution backend, and the host
#: interpreter metric moved from the vector to the *scalar* baseline
#: SpMV kernel — the scalar kernel is dispatch-bound, which is what an
#: interpreter-throughput metric should measure (the vector kernel's
#: floor is numpy ufunc latency, recorded separately as
#: ``host.vector_instructions_per_sec``).  Old /1 documents measured a
#: different workload, so cross-schema comparison fails outright.
#:
#: Schema note — additive metrics do NOT bump the schema: comparison
#: iterates the *baseline's* metric keys, so a newer run carrying extra
#: keys (e.g. the ``compare.*`` accelerator bake-off geomeans added with
#: the front-end layer) still diffs cleanly against an older baseline.
BENCH_SCHEMA = "repro-bench/2"

#: Sparsity points for the bench's accelerator bake-off metrics: a
#: three-point subset of the paper sweep keeps the added simulation
#: cost small while still averaging across sparsity regimes.
COMPARE_BENCH_SPARSITIES = (0.3, 0.5, 0.7)

#: Default sweep size: large enough for stable geomeans, small enough
#: that a cold-cache CI run stays in single-digit seconds.
DEFAULT_BENCH_SIZE = 96

#: Default relative regression threshold for ``--compare``.
DEFAULT_THRESHOLD = 0.05


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def _measure_interpreter(rounds: int = 3, *,
                         vector: bool = False) -> tuple[float, int]:
    """Host instructions/second on a fixed 64x64 baseline SpMV run.

    The headline interpreter metric uses the *scalar* baseline kernel:
    its runtime is dominated by per-instruction dispatch, which is
    exactly what ``host.interpreter_instructions_per_sec`` names.  The
    vector kernel retires most of its work inside numpy ufuncs whose
    fixed call latency bounds any dispatch-side optimisation, so it is
    measured too (``vector=True``) but reported as a separate metric.

    The same ``Soc``/program pair is timed ``rounds`` times best-of, so
    the compiled backend's one-off block-translation cost lands in the
    first round and the steady-state (block-cache-warm) rate is what
    gets reported — matching how sweeps amortise compilation.
    """
    from ..kernels.spmv import spmv_kernel
    from ..system.soc import Soc
    from ..workloads.synthetic import random_csr, random_dense_vector

    matrix = random_csr((64, 64), 0.5, seed=11)
    v = random_dense_vector(64, seed=12)
    soc = Soc()
    soc.load_csr(matrix)
    soc.load_dense_vector(v)
    soc.allocate_output(matrix.nrows)
    program = soc.assemble(spmv_kernel(accel=None, vector=vector))

    best = float("inf")
    instructions = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = soc.run(program)
        best = min(best, time.perf_counter() - start)
        instructions = result.instructions
    return instructions / best, instructions


def collect_bench(size: int | None = None, *,
                  interpreter_rounds: int = 3) -> dict:
    """Run the headline suite and return the bench document."""
    from ..analysis.experiments import SPARSITIES, headline_sweeps
    from ..exec import session_stats

    size = size or DEFAULT_BENCH_SIZE
    started = time.perf_counter()
    engine_before = session_stats()
    sweeps = headline_sweeps(size)

    metrics: dict[str, dict] = {}

    def metric(key: str, value: float, direction: str, unit: str) -> None:
        metrics[key] = {
            "value": float(value), "direction": direction, "unit": unit,
        }

    for buffers in ("1buf", "2buf"):
        points = sweeps[f"spmv_{buffers}"]
        metric(f"fig4.spmv_speedup_geomean.{buffers}",
               geomean(p.speedup for p in points), "higher", "x")
        metric(f"fig6.spmv_cpu_wait_mean.{buffers}",
               _mean(p.cpu_wait_fraction for p in points), "lower",
               "fraction")
    for variant in ("v1", "v2"):
        for buffers in ("1buf", "2buf"):
            points = sweeps[f"spmspv_{variant}_{buffers}"]
            metric(f"fig5.spmspv_speedup_geomean.{variant}_{buffers}",
                   geomean(p.speedup for p in points), "higher", "x")
            metric(f"fig7.spmspv_cpu_wait_mean.{variant}_{buffers}",
                   _mean(p.cpu_wait_fraction for p in points), "lower",
                   "fraction")

    # Accelerator bake-off: geomean speedup of every front-end (and the
    # vector CPU) over the scalar CPU, on the reduced sparsity subset.
    from ..analysis.experiments import (
        COMPARE_SERIES,
        accelerator_sweep,
        compare_geomean_speedup,
    )

    compare_cycles = accelerator_sweep(size, 8, COMPARE_BENCH_SPARSITIES)
    for name in COMPARE_SERIES:
        if name == "scalar":
            continue
        metric(f"compare.spmv_speedup_geomean.{name}",
               compare_geomean_speedup(compare_cycles, name), "higher", "x")

    # Multi-core scaling: the 2-core row-partitioned SpMV baseline vs
    # its single-core twin (contention scaling), and the same 2-core
    # system with the MMU on (virtual-memory overhead).  Additive keys
    # — see the schema note — so older baselines still compare cleanly.
    from ..exec import run_specs, spmv_spec
    from ..memory.mmu import MmuConfig
    from ..system.config import SystemConfig

    def scaling_config(n_cores: int, mmu: bool) -> SystemConfig:
        cfg = SystemConfig.paper_table1()
        cfg.n_cores = n_cores
        if mmu:
            cfg.mmu = MmuConfig()
        return cfg

    scale_size = min(size, 96)
    one_core, one_core_mmu, two_core = run_specs([
        spmv_spec((scale_size, scale_size), 0.7, hht=False,
                  config=scaling_config(n, mmu), matrix_seed=31,
                  vector_seed=32)
        for n, mmu in ((1, False), (1, True), (2, False))
    ])
    metric("scaling.spmv_2core_speedup",
           one_core.cycles / two_core.cycles, "higher", "x")
    # Single-core pair: walk cycles add strictly serially there, so the
    # overhead is always positive (multi-core overhead also reshuffles
    # the arbitration interleave; the ablation_cores figure covers it).
    metric("scaling.spmv_vm_overhead",
           one_core_mmu.cycles / one_core.cycles - 1.0, "lower", "fraction")

    ips, instructions = _measure_interpreter(rounds=interpreter_rounds)
    metric("host.interpreter_instructions_per_sec", ips, "info", "1/s")
    vec_ips, _ = _measure_interpreter(rounds=interpreter_rounds,
                                      vector=True)
    metric("host.vector_instructions_per_sec", vec_ips, "info", "1/s")

    # Exactly this suite's share of the session counters — including
    # the fault-tolerance tallies and the structured failure report.
    engine = session_stats().delta(engine_before).as_dict()
    engine.pop("points_per_second", None)

    from ..cpu.timing import _default_backend

    return {
        "schema": BENCH_SCHEMA,
        "suite": {
            "size": size,
            "sparsities": [float(s) for s in SPARSITIES],
            "vlmax": 8,
            # The execution backend every simulation above ran under
            # (recorded, not gated: simulated metrics are backend-
            # independent by contract, so cross-backend comparison is
            # exactly how that contract is checked).
            "backend": _default_backend(),
        },
        "metrics": metrics,
        "host": {
            "wall_seconds": time.perf_counter() - started,
            "interpreter_instructions": instructions,
            "sweep_engine": engine,
        },
    }


def write_bench(data: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


@dataclass
class MetricDelta:
    """One compared metric: relative move and whether it regressed."""

    key: str
    baseline: float
    current: float
    direction: str
    rel_delta: float  # signed, positive = value went up
    worse_by: float   # positive = moved in the bad direction

    def line(self) -> str:
        tag = "REGRESSION" if self.worse_by > 0 else "ok"
        return (
            f"{self.key}: {self.baseline:.6g} -> {self.current:.6g} "
            f"({self.rel_delta:+.2%}, direction={self.direction}) [{tag}]"
        )


def compare_bench(current: dict, baseline: dict, *,
                  threshold: float = DEFAULT_THRESHOLD
                  ) -> tuple[list[str], list[str]]:
    """Diff *current* against *baseline*; returns (failures, report).

    Gated metrics (direction ``higher``/``lower``) fail when they move
    more than *threshold* (relative) in the bad direction; ``info``
    metrics are reported only.  Schema or suite-size mismatches fail
    outright — comparing different sweeps would be meaningless.
    """
    failures: list[str] = []
    report: list[str] = []

    if baseline.get("schema") != current.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} vs "
            f"current {current.get('schema')!r}"
        )
        return failures, report
    base_size = baseline.get("suite", {}).get("size")
    cur_size = current.get("suite", {}).get("size")
    if base_size != cur_size:
        failures.append(
            f"suite size mismatch: baseline size={base_size} vs "
            f"current size={cur_size} (rerun with --size {base_size})"
        )
        return failures, report
    base_backend = baseline.get("suite", {}).get("backend")
    cur_backend = current.get("suite", {}).get("backend")
    if base_backend != cur_backend:
        # Deliberately NOT a failure: simulated metrics are backend-
        # independent by contract, so a cross-backend diff passing is
        # the bit-identity gate working as intended.  Host-side info
        # metrics will of course differ.
        report.append(
            f"suite.backend: baseline {base_backend!r} vs current "
            f"{cur_backend!r} (cross-backend comparison; gated metrics "
            "must still match)"
        )

    cur_metrics = current.get("metrics", {})
    for key, base_entry in sorted(baseline.get("metrics", {}).items()):
        direction = base_entry.get("direction", "info")
        cur_entry = cur_metrics.get(key)
        if cur_entry is None:
            if direction != "info":
                failures.append(f"{key}: missing from current run")
            else:
                report.append(f"{key}: missing from current run [info]")
            continue
        base_value = float(base_entry["value"])
        cur_value = float(cur_entry["value"])
        denom = abs(base_value) if base_value else 1.0
        rel_delta = (cur_value - base_value) / denom
        if direction == "higher":
            worse_by = -rel_delta
        elif direction == "lower":
            worse_by = rel_delta
        else:
            worse_by = 0.0
        delta = MetricDelta(
            key=key, baseline=base_value, current=cur_value,
            direction=direction,
            rel_delta=rel_delta,
            worse_by=worse_by if worse_by > threshold else 0.0,
        )
        report.append(delta.line())
        if delta.worse_by > 0:
            failures.append(
                f"{key}: {base_value:.6g} -> {cur_value:.6g} "
                f"({rel_delta:+.2%} is worse than the {threshold:.0%} "
                "threshold)"
            )
    return failures, report
