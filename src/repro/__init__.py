"""Reproduction of *Heterogeneous Architecture for Sparse Data Processing*
(Adavally et al., IPPS 2022).

The package models the paper's full system in Python:

* :mod:`repro.formats` — sparse representations (CSR, CSC, COO, BCSR,
  bit-vector, run-length, SMASH-style hierarchical bitmaps, sparse vectors)
  and Matrix Market I/O.
* :mod:`repro.isa` / :mod:`repro.cpu` — a behavioural RV32IMF+V subset
  with an assembler and a cycle-approximate in-order core model.
* :mod:`repro.memory` — the shared pipelined on-chip RAM and MMIO bus.
* :mod:`repro.core` — **the paper's contribution**: the Hardware Helper
  Thread (HHT) front-end/back-end, for SpMV and both SpMSpV variants.
* :mod:`repro.kernels` — the SpMV/SpMSpV assembly kernels (baselines with
  indexed gathers, and HHT-assisted versions).
* :mod:`repro.system` — SoC composition and run infrastructure.
* :mod:`repro.power` — synthesis-anchored area/power/energy models.
* :mod:`repro.workloads` — synthetic sweeps, DNN FC layers, .mtx corpus.
* :mod:`repro.analysis` — one harness entry point per paper figure/table.

Quickstart::

    from repro.workloads import random_csr, random_dense_vector
    from repro.analysis import run_spmv

    m = random_csr((256, 256), sparsity=0.7, seed=1)
    v = random_dense_vector(256, seed=2)
    base = run_spmv(m, v, hht=False)
    hht = run_spmv(m, v, hht=True)
    print(f"speedup: {base.cycles / hht.cycles:.2f}x")
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "cpu",
    "formats",
    "instrument",
    "isa",
    "kernels",
    "memory",
    "power",
    "system",
    "workloads",
]
