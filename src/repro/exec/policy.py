"""Fault-tolerance policy and error taxonomy for the sweep engine.

An :class:`ExecPolicy` tells :func:`repro.exec.run_specs` how to behave
when a point misbehaves: how long one spec may run (``timeout``), how
long the whole batch may take (``deadline``), how many times a failed
spec is retried (``retries``, with exponential backoff and
seed-deterministic jitter so two hosts replaying the same sweep sleep
the same schedule), and what to do once retries are exhausted
(``on_error``):

* ``"raise"`` — propagate the first exhausted failure (the historic
  behaviour of a bare ``pool.map``);
* ``"skip"`` — leave ``None`` in that result slot and keep sweeping;
* ``"collect"`` — leave the :class:`ExecError` itself in the slot so
  the caller can triage per point.

Every failure is classified into a small taxonomy rooted at
:class:`ExecError` — :class:`WorkerCrash` (the worker process died),
:class:`SpecTimeout` (one spec ran past its per-spec budget),
:class:`DeadlineExceeded` (the batch ran past its total budget),
:class:`CacheCorruption` (a persisted entry failed its integrity
digest) and :class:`TransientFault` (a retryable error, e.g. injected
by :mod:`repro.exec.faults`).  Errors carry the spec's cache content
key and a human-readable label so a :class:`FailureReport` can be
written out and correlated with cache entries.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any

ENV_TIMEOUT = "REPRO_TIMEOUT"
ENV_DEADLINE = "REPRO_DEADLINE"
ENV_RETRIES = "REPRO_RETRIES"
ENV_ON_ERROR = "REPRO_ON_ERROR"
ENV_BACKOFF = "REPRO_BACKOFF"
ENV_QUARANTINE = "REPRO_QUARANTINE"

ON_ERROR_MODES = ("raise", "skip", "collect")


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------
def _rebuild_error(cls, message, key, label, attempts):
    """Unpickle helper: rebuild an ExecError with its metadata intact."""
    return cls(message, key=key, label=label, attempts=attempts)


class ExecError(Exception):
    """Base of the sweep-engine failure taxonomy.

    Carries the failing spec's cache content ``key`` (so the failure can
    be correlated with — or quarantined alongside — its cache entry), a
    short human ``label`` and the number of ``attempts`` made.
    """

    category = "error"
    #: Whether a bounded retry may plausibly succeed.
    retryable = True

    def __init__(self, message: str, *, key: str = "", label: str = "",
                 attempts: int = 0):
        super().__init__(message)
        self.key = key
        self.label = label
        self.attempts = attempts

    def __reduce__(self):  # exceptions cross process boundaries pickled
        return (_rebuild_error,
                (type(self), str(self), self.key, self.label, self.attempts))


class WorkerCrash(ExecError):
    """A worker process died mid-spec (``BrokenProcessPool``)."""

    category = "worker-crash"


class SpecTimeout(ExecError):
    """One spec ran past the per-spec ``timeout``."""

    category = "timeout"


class DeadlineExceeded(ExecError):
    """The whole batch ran past the total ``deadline`` (never retried)."""

    category = "deadline"
    retryable = False


class CacheCorruption(ExecError):
    """A persisted cache entry failed its integrity digest."""

    category = "cache-corruption"


class TransientFault(ExecError):
    """A retryable transient error (e.g. injected flakiness)."""

    category = "transient"


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------
def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else None


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else None


@dataclass(frozen=True)
class ExecPolicy:
    """How :func:`run_specs` reacts to slow, crashing or flaky specs."""

    #: Per-spec wall-clock budget in seconds (None = unlimited).
    timeout: float | None = None
    #: Whole-batch wall-clock budget in seconds (None = unlimited).
    deadline: float | None = None
    #: Extra attempts after the first failure (0 = fail immediately).
    retries: int = 0
    #: Base backoff delay; attempt *n* waits ``backoff * 2**(n-1)``…
    backoff: float = 0.1
    #: …capped here, then scaled by a deterministic jitter in [0.5, 1).
    backoff_max: float = 2.0
    #: Seed for the jitter hash (same seed → same sleep schedule).
    jitter_seed: int = 0
    #: What to do with a spec once its retries are exhausted.
    on_error: str = "raise"
    #: Hard per-spec failure cap: a spec failing this many times is
    #: quarantined (no further retries even if the budget allows them).
    #: None scales with the retry budget (``retries + 2``) so crash
    #: attribution noise never starves a generous retry policy.
    quarantine_after: int | None = None

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, "
                f"got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    @classmethod
    def from_env(cls) -> "ExecPolicy":
        """Policy from ``REPRO_TIMEOUT`` / ``REPRO_RETRIES`` / … env vars."""
        kwargs: dict[str, Any] = {}
        if (timeout := _env_float(ENV_TIMEOUT)) is not None:
            kwargs["timeout"] = timeout
        if (deadline := _env_float(ENV_DEADLINE)) is not None:
            kwargs["deadline"] = deadline
        if (retries := _env_int(ENV_RETRIES)) is not None:
            kwargs["retries"] = retries
        if (backoff := _env_float(ENV_BACKOFF)) is not None:
            kwargs["backoff"] = backoff
        if (quarantine := _env_int(ENV_QUARANTINE)) is not None:
            kwargs["quarantine_after"] = quarantine
        on_error = os.environ.get(ENV_ON_ERROR, "").strip()
        if on_error:
            kwargs["on_error"] = on_error
        return cls(**kwargs)

    @property
    def max_attempts(self) -> int:
        return 1 + self.retries

    def to_json_dict(self) -> dict[str, Any]:
        """JSON-able form (recorded in the obs log's sweep.start event)."""
        return {
            "timeout": self.timeout,
            "deadline": self.deadline,
            "retries": self.retries,
            "backoff": self.backoff,
            "backoff_max": self.backoff_max,
            "jitter_seed": self.jitter_seed,
            "on_error": self.on_error,
            "quarantine_after": self.quarantine_after,
        }

    def retry_delay(self, key: str, attempt: int) -> float:
        """Backoff before relaunching *key* after its *attempt*-th try.

        Exponential in the attempt number, capped at ``backoff_max``,
        scaled by a jitter factor in ``[0.5, 1.0)`` derived from
        ``(jitter_seed, key, attempt)`` — deterministic, so a replayed
        sweep sleeps the exact same schedule on any host.
        """
        base = min(self.backoff_max, self.backoff * (2.0 ** max(0, attempt - 1)))
        digest = hashlib.sha256(
            f"{self.jitter_seed}:{key}:{attempt}".encode()
        ).hexdigest()
        jitter = 0.5 + (int(digest[:12], 16) / float(16 ** 12)) * 0.5
        return base * jitter


# ---------------------------------------------------------------------------
# Failure reporting
# ---------------------------------------------------------------------------
@dataclass
class FailureRecord:
    """One spec's failure history inside a sweep."""

    key: str
    label: str
    category: str
    message: str
    attempts: int
    #: True when a later attempt succeeded (the failure was transient).
    resolved: bool = False
    #: True when the spec hit the quarantine cap and was abandoned.
    quarantined: bool = False

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "category": self.category,
            "message": self.message,
            "attempts": self.attempts,
            "resolved": self.resolved,
            "quarantined": self.quarantined,
        }


@dataclass
class FailureReport:
    """Structured account of everything that went wrong in a sweep."""

    records: list[FailureRecord] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def unresolved(self) -> list[FailureRecord]:
        return [r for r in self.records if not r.resolved]

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r.category == category)

    def to_json_dict(self) -> dict[str, Any]:
        categories: dict[str, int] = {}
        for record in self.records:
            categories[record.category] = categories.get(record.category, 0) + 1
        return {
            "total": len(self.records),
            "unresolved": len(self.unresolved),
            "quarantined": sum(1 for r in self.records if r.quarantined),
            "categories": categories,
            "records": [r.to_json_dict() for r in self.records],
        }

    def summary_lines(self) -> list[str]:
        lines = []
        for record in self.records:
            outcome = ("recovered" if record.resolved
                       else "QUARANTINED" if record.quarantined else "failed")
            lines.append(
                f"{record.category}: {record.label} [{record.key[:12]}] "
                f"{outcome} after {record.attempts} attempt(s): "
                f"{record.message}"
            )
        return lines
