"""Content-addressed, persistent cache of simulation results.

Every :class:`~repro.exec.spec.RunSpec` hashes to a stable key derived
from (a) its canonical JSON payload — config fields, workload generator
arguments, kernel, seeds — and (b) a *code-version salt* that digests
every source file of the installed ``repro`` package (``.py`` and the
bundled ``.mtx`` data).  A cached hit therefore returns bit-identical
results to a live run by construction: any change to the simulator, the
kernels, the workload generators or the bundled matrices changes the
salt and orphans stale entries.

Results persist as small JSON documents under ``$REPRO_CACHE_DIR`` (or
``~/.cache/repro``), sharded by the first two hex digits of the key.
The cache is strictly best-effort: unreadable, corrupt or
foreign-schema entries are treated as misses, and write failures are
ignored — a broken cache directory can slow a sweep down but never
break or skew it.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path

from .spec import RunSpec, RunSummary

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"

#: Bump when the cached JSON layout changes incompatibly.
#: 3: the flattened config gained ``cpu.backend`` (execution backend is
#: part of every key, so runs from different backends never alias).
#: 4: accelerator front-ends (repro.accel) — specs carry the generic
#: ``accelerators.*`` config section and new SpMV/SpMSpV variant names
#: (``ssr``/``indexmac``); pre-front-end entries must never alias them.
SCHEMA_VERSION = 4


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every repro source/data file (the cache salt)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    paths = sorted(root.rglob("*.py")) + sorted(root.rglob("*.mtx"))
    for path in paths:
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        try:
            digest.update(path.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def cache_key(spec: RunSpec) -> str:
    """Stable content address of one simulation point."""
    payload = {
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "spec": spec.to_payload(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "repro"


class NullCache:
    """Cache that stores nothing (``--no-cache`` / ``REPRO_NO_CACHE=1``)."""

    def get(self, spec: RunSpec) -> RunSummary | None:
        return None

    def put(self, spec: RunSpec, summary: RunSummary) -> None:
        pass


class ResultCache:
    """Filesystem-backed result store keyed by :func:`cache_key`."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> RunSummary | None:
        path = self._path(cache_key(spec))
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if data.get("schema") != SCHEMA_VERSION:
            return None
        try:
            return RunSummary.from_json_dict(data["summary"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, spec: RunSpec, summary: RunSummary) -> None:
        key = cache_key(spec)
        path = self._path(key)
        document = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "summary": summary.to_json_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(document, separators=(",", ":")))
            tmp.replace(path)  # atomic: concurrent writers race benignly
        except OSError:
            pass

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*/*.json"))
        except OSError:
            return 0
