"""Content-addressed, persistent cache of simulation results.

Every :class:`~repro.exec.spec.RunSpec` hashes to a stable key derived
from (a) its canonical JSON payload — config fields, workload generator
arguments, kernel, seeds — and (b) a *code-version salt* that digests
every source file of the installed ``repro`` package (``.py`` and the
bundled ``.mtx`` data).  A cached hit therefore returns bit-identical
results to a live run by construction: any change to the simulator, the
kernels, the workload generators or the bundled matrices changes the
salt and orphans stale entries.

Results persist as small JSON documents under ``$REPRO_CACHE_DIR`` (or
``~/.cache/repro``), sharded by the first two hex digits of the key.

Integrity is checked, not assumed: every entry carries a SHA-256
``digest`` of its summary payload.  On read, a document that fails to
parse, decode or match its digest is **quarantined** — renamed to
``<entry>.json.corrupt`` so the evidence survives for `repro cache
verify` — counted as a :class:`CorruptionEvent` (the engine folds these
into ``ExecStats.corrupt`` and the failure report), and treated as a
miss so the point is re-simulated.  Entries from a different schema
version are silent misses (staleness, not damage), and write failures
are still ignored: a broken cache directory can slow a sweep down but
never break or skew it.

:meth:`ResultCache.verify` / :meth:`prune` / :meth:`info` back the
``repro cache`` CLI subcommand.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

from .spec import RunSpec, RunSummary

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"

#: Bump when the cached JSON layout changes incompatibly.
#: 3: the flattened config gained ``cpu.backend`` (execution backend is
#: part of every key, so runs from different backends never alias).
#: 4: accelerator front-ends (repro.accel) — specs carry the generic
#: ``accelerators.*`` config section and new SpMV/SpMSpV variant names
#: (``ssr``/``indexmac``); pre-front-end entries must never alias them.
#: 5: every entry carries an integrity ``digest`` of its summary
#: payload; digest-less pre-integrity entries must read as stale, not
#: as corrupt.
#: 6: multi-core SoC + optional MMU — the flattened config gained
#: ``n_cores`` and the ``mmu.*`` section, so core-count and
#: address-translation mode participate in every content key (a 1-core
#: physical run, a 2-core run and an MMU-on run can never alias).
SCHEMA_VERSION = 6

_WARNED: set[str] = set()


def _warn_once(tag: str, message: str) -> None:
    """Emit one RuntimeWarning per degradation mode per process."""
    if tag in _WARNED:
        return
    _WARNED.add(tag)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every repro source/data file (the cache salt)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    paths = sorted(root.rglob("*.py")) + sorted(root.rglob("*.mtx"))
    for path in paths:
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        try:
            digest.update(path.read_bytes())
        except OSError as exc:
            # Degrading the salt silently would let two *different* code
            # states share cache keys; make the degradation observable.
            _warn_once(
                "code_version",
                f"cache salt degraded: unreadable source file {path} "
                f"({exc}); cached results may alias across code versions",
            )
            digest.update(b"<unreadable>")
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def cache_key(spec: RunSpec) -> str:
    """Stable content address of one simulation point."""
    payload = {
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "spec": spec.to_payload(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def payload_key(spec: RunSpec) -> str:
    """Code-version-independent digest of one spec's payload.

    Unlike :func:`cache_key` this omits the code-version salt, so it is
    stable across source edits.  Fault injection rolls on it: a chaos
    seed trips the same faults for the same spec on every commit,
    keeping chaos tests reproducible as the codebase evolves.
    """
    blob = json.dumps(spec.to_payload(), sort_keys=True,
                      separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=1)
def _hostname() -> str:
    try:
        return socket.gethostname()
    except OSError:
        return "unknown"


def run_provenance(extra: dict | None = None) -> dict:
    """Who/what/when sidecar recorded with every cache entry.

    Captures the code-version digest, schema version, execution backend,
    hostname and write wall-time; *extra* (e.g. the engine's attempt
    count) is merged on top.  Provenance sits **outside** the integrity
    digest — it describes the write, not the result, so two hosts
    producing the same summary still agree on the digest.
    """
    from ..cpu.timing import _default_backend

    provenance = {
        "schema": SCHEMA_VERSION,
        "code": code_version(),
        "backend": _default_backend(),
        "host": _hostname(),
        "wall": time.time(),
    }
    if extra:
        provenance.update(extra)
    return provenance


def summary_digest(summary_dict: dict) -> str:
    """Integrity digest over a summary's canonical JSON form."""
    blob = json.dumps(summary_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> Path:
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "repro"


@dataclass
class CorruptionEvent:
    """One quarantined cache entry (key, where it went, and why)."""

    key: str
    path: str
    reason: str


@dataclass
class CacheAudit:
    """What ``repro cache verify`` found in one scan."""

    root: str
    scanned: int = 0
    ok: int = 0
    foreign_schema: int = 0
    corrupt: list[dict] = field(default_factory=list)
    quarantined_files: int = 0
    tmp_files: int = 0
    total_bytes: int = 0

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "scanned": self.scanned,
            "ok": self.ok,
            "foreign_schema": self.foreign_schema,
            "corrupt": list(self.corrupt),
            "quarantined_files": self.quarantined_files,
            "tmp_files": self.tmp_files,
            "total_bytes": self.total_bytes,
        }


class NullCache:
    """Cache that stores nothing (``--no-cache`` / ``REPRO_NO_CACHE=1``)."""

    def get(self, spec: RunSpec) -> RunSummary | None:
        return None

    def put(self, spec: RunSpec, summary: RunSummary, *,
            provenance: dict | None = None) -> None:
        pass

    def drain_corruption_events(self) -> list[CorruptionEvent]:
        return []


def _check_document(data: Any) -> dict | None:
    """Validate one parsed cache document; return its summary dict.

    Returns None for foreign-schema documents (stale, not corrupt);
    raises ValueError for anything structurally or integrity-broken.
    """
    if not isinstance(data, dict):
        raise ValueError("cache document is not a JSON object")
    if data.get("schema") != SCHEMA_VERSION:
        return None
    summary = data.get("summary")
    if not isinstance(summary, dict):
        raise ValueError("cache document has no summary payload")
    digest = data.get("digest")
    if digest != summary_digest(summary):
        raise ValueError(
            f"integrity digest mismatch (stored {str(digest)[:12]}…)"
        )
    return summary


class ResultCache:
    """Filesystem-backed result store keyed by :func:`cache_key`.

    ``faults`` arms deterministic cache-byte-flipping injection (the
    ``cache-corrupt`` kind of :class:`~repro.exec.faults.FaultPlan`);
    by default the plan comes from ``$REPRO_FAULTS``.
    """

    def __init__(self, root: str | Path | None = None, *, faults=None):
        from .faults import FaultPlan

        self.root = Path(root) if root is not None else default_cache_dir()
        self._faults = faults if faults is not None else FaultPlan.from_env()
        self._events: list[CorruptionEvent] = []
        self._put_counts: dict[str, int] = {}
        #: Optional ``callback(cache_key)`` invoked when fault injection
        #: corrupts an entry this cache just wrote — the engine arms it
        #: while an obs log is recording, so even cache-corrupt faults
        #: are attributed in the event stream.
        self.on_fault = None

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Move a damaged entry aside (never silently overwrite it)."""
        dest = path.with_name(path.name + ".corrupt")
        try:
            path.replace(dest)
        except OSError:
            dest = path  # rename failed; at least report in place
        self._events.append(CorruptionEvent(
            key=key, path=str(dest), reason=reason,
        ))

    def drain_corruption_events(self) -> list[CorruptionEvent]:
        """Hand the quarantine log to the caller (and clear it)."""
        events, self._events = self._events, []
        return events

    def get(self, spec: RunSpec) -> RunSummary | None:
        key = cache_key(spec)
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None  # absent (or unreadable): a plain miss
        try:
            summary = _check_document(json.loads(text))
            if summary is None:
                return None  # foreign schema: stale, not corrupt
            return RunSummary.from_json_dict(summary)
        except (KeyError, TypeError, ValueError) as exc:
            self._quarantine(path, key, str(exc))
            return None

    def put(self, spec: RunSpec, summary: RunSummary, *,
            provenance: dict | None = None) -> None:
        key = cache_key(spec)
        path = self._path(key)
        summary_dict = summary.to_json_dict()
        document = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "digest": summary_digest(summary_dict),
            # Outside the digest: describes the write, not the result.
            "provenance": run_provenance(provenance),
            # Summary last (and by far largest): the structural header
            # fields stay clear of mid-file byte corruption.
            "summary": summary_dict,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(document, separators=(",", ":")))
            tmp.replace(path)  # atomic: concurrent writers race benignly
        except OSError:
            return
        if self._faults.active:
            from .faults import maybe_corrupt_file

            fkey = payload_key(spec)
            count = self._put_counts.get(fkey, 0) + 1
            self._put_counts[fkey] = count
            if maybe_corrupt_file(self._faults, path, fkey, count) \
                    and self.on_fault is not None:
                try:
                    self.on_fault(key)
                except Exception:
                    pass  # observers must never break the cache

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*/*.json"))
        except OSError as exc:
            _warn_once(
                "cache_len",
                f"cache directory {self.root} unreadable ({exc}); "
                "reporting an empty cache",
            )
            return 0

    # -- maintenance (the `repro cache` subcommand) ------------------------
    def _entry_paths(self) -> list[Path]:
        try:
            return sorted(self.root.glob("*/*.json"))
        except OSError:
            return []

    def verify(self) -> CacheAudit:
        """Read-only integrity scan of every entry under the root."""
        audit = CacheAudit(root=str(self.root))
        for path in self._entry_paths():
            audit.scanned += 1
            try:
                audit.total_bytes += path.stat().st_size
            except OSError:
                pass
            try:
                summary = _check_document(json.loads(path.read_text()))
            except (OSError, KeyError, TypeError, ValueError) as exc:
                audit.corrupt.append({"path": str(path), "reason": str(exc)})
                continue
            if summary is None:
                audit.foreign_schema += 1
            else:
                audit.ok += 1
        try:
            audit.quarantined_files = sum(
                1 for _ in self.root.glob("*/*.corrupt"))
            audit.tmp_files = sum(1 for _ in self.root.glob("*/*.tmp"))
        except OSError:
            pass
        return audit

    def prune(self) -> dict[str, int]:
        """Delete damaged / stale / leftover files; keep valid entries.

        Removes corrupt entries, foreign-schema entries, quarantined
        ``*.corrupt`` evidence and orphaned ``*.tmp`` writer files.
        Returns removal counts per class plus bytes freed.
        """
        removed = {"corrupt": 0, "foreign_schema": 0,
                   "quarantined": 0, "tmp": 0, "bytes_freed": 0}

        def _remove(path: Path, kind: str) -> None:
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                return
            removed[kind] += 1
            removed["bytes_freed"] += size

        for path in self._entry_paths():
            try:
                summary = _check_document(json.loads(path.read_text()))
            except (OSError, KeyError, TypeError, ValueError):
                _remove(path, "corrupt")
                continue
            if summary is None:
                _remove(path, "foreign_schema")
        try:
            for path in self.root.glob("*/*.corrupt"):
                _remove(path, "quarantined")
            for path in self.root.glob("*/*.tmp"):
                _remove(path, "tmp")
        except OSError:
            pass
        return removed

    def info(self) -> dict[str, Any]:
        """Shape of the cache: entry count, bytes, schema + provenance
        histograms (which backends / code versions / hosts wrote it)."""
        schemas: dict[str, int] = {}
        backends: dict[str, int] = {}
        code_versions: dict[str, int] = {}
        hosts: dict[str, int] = {}
        with_provenance = 0
        total_bytes = 0
        entries = 0
        for path in self._entry_paths():
            entries += 1
            data: Any = None
            try:
                total_bytes += path.stat().st_size
                data = json.loads(path.read_text())
                schema = str(data.get("schema", "?"))
            except (OSError, ValueError, AttributeError):
                schema = "unreadable"
            schemas[schema] = schemas.get(schema, 0) + 1
            provenance = data.get("provenance") if isinstance(data, dict) \
                else None
            if isinstance(provenance, dict):
                with_provenance += 1
                for histogram, name in ((backends, "backend"),
                                        (code_versions, "code"),
                                        (hosts, "host")):
                    value = str(provenance.get(name, "?"))
                    histogram[value] = histogram.get(value, 0) + 1
        quarantined = tmp = 0
        try:
            quarantined = sum(1 for _ in self.root.glob("*/*.corrupt"))
            tmp = sum(1 for _ in self.root.glob("*/*.tmp"))
        except OSError:
            pass
        return {
            "root": str(self.root),
            "schema_version": SCHEMA_VERSION,
            "entries": entries,
            "total_bytes": total_bytes,
            "schemas": schemas,
            "quarantined_files": quarantined,
            "tmp_files": tmp,
            "provenance": {
                "entries": with_provenance,
                "backends": backends,
                "code_versions": code_versions,
                "hosts": hosts,
            },
        }
