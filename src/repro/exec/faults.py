"""Deterministic fault injection for the sweep engine (chaos testing).

``REPRO_FAULTS=crash:0.1,hang:0.05,cache-corrupt:0.2,flaky:0.3`` arms
the injector: every *attempt* of every spec the engine launches rolls —
per fault kind — against the configured probability.  Two extra keys
tune the plan: ``seed:<int>`` (default 0) and ``hang-seconds:<float>``
(how long an injected hang sleeps, default 30).

The rolls are *pure functions* of ``(seed, kind, spec key, attempt)``
via SHA-256 — no RNG state, no process affinity.  That makes injection

* **process-safe**: a pool worker and the serial fallback decide
  identically for the same attempt, and
* **seed-deterministic**: a chaos run either always trips a given fault
  or never does, so chaos tests are reproducible, and a retried attempt
  (``attempt + 1``) re-rolls rather than re-tripping forever.

What each kind does when it trips (see :func:`inject_pre_execute`):

* ``crash`` — in a pool worker, ``os._exit`` mid-spec so the driver
  sees a real ``BrokenProcessPool``; on the serial path, raise
  :class:`~repro.exec.policy.WorkerCrash` (killing the caller's own
  process would take the test harness down with it).
* ``hang`` — sleep ``hang_seconds``, long enough to blow any sane
  per-spec timeout.
* ``flaky`` — raise :class:`~repro.exec.policy.TransientFault`.
* ``cache-corrupt`` — handled by the cache layer: flip one payload byte
  in the entry just written (:func:`maybe_corrupt_file`), which the
  integrity digest must later catch.

Faults are injected only around engine-launched attempts — a direct
:func:`repro.exec.execute` call never trips them — so the injector
exercises exactly the fault-tolerance machinery and nothing else.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

from .policy import TransientFault, WorkerCrash

ENV_FAULTS = "REPRO_FAULTS"

#: Exit status of a fault-injected worker crash (distinctive in logs).
CRASH_EXIT_CODE = 86

_PROB_KINDS = ("crash", "hang", "cache-corrupt", "flaky")


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULTS`` grammar; inert when every rate is 0."""

    crash: float = 0.0
    hang: float = 0.0
    cache_corrupt: float = 0.0
    flaky: float = 0.0
    seed: int = 0
    hang_seconds: float = 30.0

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse ``kind:rate,...`` (plus ``seed:``/``hang-seconds:``)."""
        if not text or not text.strip():
            return cls()
        kwargs: dict[str, float | int] = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, sep, value = chunk.partition(":")
            kind = kind.strip()
            if not sep:
                raise ValueError(
                    f"bad REPRO_FAULTS entry {chunk!r}: expected 'kind:value'"
                )
            if kind == "seed":
                kwargs["seed"] = int(value)
            elif kind == "hang-seconds":
                kwargs["hang_seconds"] = float(value)
            elif kind in _PROB_KINDS:
                rate = float(value)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"fault rate for {kind!r} must be in [0, 1], got {rate}"
                    )
                kwargs[kind.replace("-", "_")] = rate
            else:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {_PROB_KINDS + ('seed', 'hang-seconds')})"
                )
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls) -> "FaultPlan":
        return cls.parse(os.environ.get(ENV_FAULTS))

    def spec_string(self) -> str:
        """Round-trippable grammar form (what workers are handed)."""
        parts = [
            f"{kind}:{getattr(self, kind.replace('-', '_'))}"
            for kind in _PROB_KINDS
            if getattr(self, kind.replace("-", "_")) > 0.0
        ]
        parts.append(f"seed:{self.seed}")
        parts.append(f"hang-seconds:{self.hang_seconds}")
        return ",".join(parts)

    @property
    def active(self) -> bool:
        return any(getattr(self, k.replace("-", "_")) > 0.0
                   for k in _PROB_KINDS)

    def roll(self, kind: str, key: str, attempt: int) -> bool:
        """Deterministic decision: does *kind* trip for (key, attempt)?"""
        rate = getattr(self, kind.replace("-", "_"))
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{key}:{attempt}".encode()
        ).hexdigest()
        return (int(digest[:12], 16) / float(16 ** 12)) < rate


def inject_pre_execute(plan: FaultPlan, key: str, attempt: int, *,
                       label: str = "", in_worker: bool,
                       obs=None, event_key: str = "") -> None:
    """Trip any armed pre-execution fault for this (spec, attempt).

    Called by the engine just before :func:`repro.exec.execute` — in
    the pool worker when fanned out, in the driver process on the
    serial fallback (where a crash is *simulated* by raising
    :class:`WorkerCrash` instead of killing the process).

    When an obs emitter is attached (any object with the
    ``emit(etype, key=, label=, attempt=, **data)`` shape), a
    ``fault.injected`` event is written — and flushed — *before* the
    fault trips, so even an ``os._exit`` crash leaves its attribution
    on disk.  ``event_key`` carries the spec's correlation (cache) key;
    *key* here is the code-stable payload key the rolls use.
    """

    def _announce(kind: str) -> None:
        if obs is not None:
            obs.emit("fault.injected", key=event_key or key, label=label,
                     attempt=attempt, kind=kind)

    if plan.roll("crash", key, attempt):
        _announce("crash")
        if in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrash(
            f"injected worker crash (attempt {attempt})",
            key=key, label=label, attempts=attempt,
        )
    if plan.roll("hang", key, attempt):
        _announce("hang")
        time.sleep(plan.hang_seconds)
    if plan.roll("flaky", key, attempt):
        _announce("flaky")
        raise TransientFault(
            f"injected transient fault (attempt {attempt})",
            key=key, label=label, attempts=attempt,
        )


def maybe_corrupt_file(plan: FaultPlan, path: Path, key: str,
                       attempt: int) -> bool:
    """Flip one byte of a just-written cache entry if the roll trips.

    The flipped byte sits in the middle of the file — inside the JSON
    payload, past the header fields — so the document usually still
    parses and only the integrity digest can catch it (the hard case).
    Returns True when the file was corrupted.
    """
    if not plan.roll("cache-corrupt", key, attempt):
        return False
    try:
        blob = bytearray(path.read_bytes())
        if not blob:
            return False
        pivot = len(blob) // 2
        blob[pivot] ^= 0x01
        path.write_bytes(bytes(blob))
        return True
    except OSError:
        return False
