"""Picklable simulation points: what the sweep engine fans out.

A :class:`RunSpec` is a *complete, self-contained* description of one
``Soc.run`` measurement: the kernel, the workload generator and its
arguments (sizes, sparsities, seeds), and the full flattened
:class:`~repro.system.config.SystemConfig`.  Because the spec carries
everything, it can be

* pickled to a :class:`~concurrent.futures.ProcessPoolExecutor` worker
  (the matrix/vector are regenerated *in the worker*, so operand
  construction parallelises too), and
* hashed into a stable content address for the persistent result cache
  (any config field, workload argument or seed change changes the key).

:func:`execute` is the single executor: given a spec it rebuilds the
workload, runs the simulation through the standard
:mod:`repro.analysis.runners` entry points and returns a lightweight,
picklable :class:`RunSummary`.  Determinism is load-bearing — the same
spec must always produce bit-identical cycles, statistics and output
vectors, which is what makes cached and parallel runs indistinguishable
from serial live runs (and is covered by tests/exec/).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

import numpy as np

from ..component import cache_stats_view, hht_stats_view, port_requests_view
from ..system.config import SystemConfig

KERNELS = ("spmv", "spmspv", "spmv_programmable")
WORKLOADS = ("synthetic", "corpus", "dnn")

#: Flattened SystemConfig as a hashable, picklable tuple of (key, value).
ConfigItems = tuple[tuple[str, Any], ...]


def freeze_config(config: SystemConfig) -> ConfigItems:
    """Flatten a SystemConfig into a hashable tuple of dotted-key pairs."""
    return tuple(sorted(config.to_flat().items()))


def thaw_config(items: ConfigItems) -> SystemConfig:
    """Rebuild the SystemConfig a spec carries."""
    return SystemConfig.from_flat(dict(items))


def _default_config_items(
    config: SystemConfig | None, vlmax: int, n_buffers: int,
    accel: str | None = None,
) -> ConfigItems:
    """Freeze the config, materialising the named front-end if absent.

    Appending the accelerator *before* freezing means SSR/IndexMAC specs
    differ from HHT-only specs structurally (the ``accelerators.*``
    section), not just by variant string — their cache keys can never
    alias.
    """
    if config is None:
        config = SystemConfig.paper_table1(vlmax=vlmax, n_buffers=n_buffers)
    if accel not in (None, "hht") and all(
        spec.kind != accel for spec in config.accelerator_specs()
    ):
        config = config.with_accelerator(accel)
    return freeze_config(config)


@dataclass(frozen=True)
class RunSpec:
    """One simulation point (hashable, picklable, content-addressable).

    ``variant`` selects within the kernel family: the accelerator name
    (``"baseline"``/``"hht"``/``"ssr"``/``"indexmac"``) for SpMV, the
    mode (``"baseline"``/``"hht_v1"``/``"hht_v2"``/``"ssr"``/
    ``"indexmac"``) for SpMSpV, and the firmware format name for the
    programmable HHT.
    ``vector_sparsity < 0`` means "same as the matrix" (SpMSpV only).
    ``dnn_rows == 0`` means "all rows" for DNN-layer workloads.
    """

    kernel: str
    variant: str = "hht"
    workload: str = "synthetic"
    rows: int = 0
    cols: int = 0
    sparsity: float = 0.5
    vector_sparsity: float = -1.0
    matrix_seed: int = 0
    vector_seed: int = 0
    name: str = ""
    dnn_rows: int = 0
    config: ConfigItems = ()
    verify: bool = True

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {self.kernel!r}")
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}"
            )
        if self.workload == "synthetic" and (self.rows < 1 or self.cols < 1):
            raise ValueError("synthetic workloads need positive rows/cols")
        if self.workload in ("corpus", "dnn") and not self.name:
            raise ValueError(f"{self.workload} workloads need a name")

    def to_payload(self) -> dict[str, Any]:
        """Canonical JSON-able form used for content addressing."""
        payload: dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        payload["config"] = [[k, v] for k, v in self.config]
        return payload

    @property
    def label(self) -> str:
        """Short human identity for failure reports and error messages."""
        core = f"{self.kernel}/{self.variant}"
        if self.workload == "synthetic":
            shape = (f"{self.rows}x{self.cols}" if self.kernel == "spmv"
                     else f"{self.rows}")
            return (f"{core} {shape} s={self.sparsity:g} "
                    f"seeds={self.matrix_seed}/{self.vector_seed}")
        return f"{core} {self.workload}:{self.name}"


@dataclass
class RunSummary:
    """The picklable, cacheable outcome of one executed :class:`RunSpec`.

    Carries the flat component-tree stats registry (everything the
    experiment harness tabulates — cycles, wait cycles, per-requester
    counts — is in there or derived from it as a view) plus the kernel's
    output vector ``y`` so determinism is checkable end to end.
    """

    cycles: int
    instructions: int
    stats: dict[str, int | float]
    frequency_hz: float
    y: np.ndarray

    @property
    def cpu_wait_cycles(self) -> int:
        return self.hht_stats.get("cpu_wait_cycles", 0)

    @property
    def hht_wait_cycles(self) -> int:
        return self.hht_stats.get("hht_wait_cycles", 0)

    @property
    def hht_stats(self) -> dict[str, int]:
        return hht_stats_view(self.stats)

    @property
    def port_requests(self) -> dict[str, int]:
        return port_requests_view(self.stats)

    @property
    def cache_stats(self) -> dict[str, Any] | None:
        return cache_stats_view(self.stats)

    @property
    def cpu_wait_fraction(self) -> float:
        return self.cpu_wait_cycles / self.cycles if self.cycles else 0.0

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stats": dict(self.stats),
            "frequency_hz": self.frequency_hz,
            # float32 values are exactly representable as JSON floats.
            "y": [float(x) for x in self.y],
        }

    @classmethod
    def from_json_dict(cls, data: dict[str, Any]) -> "RunSummary":
        return cls(
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            stats={k: (float(v) if isinstance(v, float) else int(v))
                   for k, v in data["stats"].items()},
            frequency_hz=float(data["frequency_hz"]),
            y=np.asarray(data["y"], dtype=np.float32),
        )


# ---------------------------------------------------------------------------
# Spec factories (one per harness entry point)
# ---------------------------------------------------------------------------
_UNSET = object()


def _spmv_variant(hht, accel) -> str:
    """Resolve the hht=/accel= pair to a RunSpec variant name."""
    if accel is _UNSET:
        return "hht" if hht else "baseline"
    if hht is not None:
        raise TypeError("pass either accel= or the hht= flag, not both")
    return accel if accel is not None else "baseline"


def spmv_spec(
    shape: tuple[int, int], sparsity: float, *,
    hht: bool | None = None,
    accel: str | None = _UNSET,  # type: ignore[assignment]
    matrix_seed: int = 0, vector_seed: int = 1,
    vlmax: int = 8, n_buffers: int = 2,
    config: SystemConfig | None = None, verify: bool = True,
) -> RunSpec:
    """Synthetic-matrix SpMV point.

    ``accel`` names the front-end (``"hht"``, ``"ssr"``, ``"indexmac"``,
    None for the pure-CPU baseline); the boolean ``hht=`` flag remains as
    a compatible alias.
    """
    rows, cols = shape
    variant = _spmv_variant(hht, accel)
    return RunSpec(
        kernel="spmv", variant=variant,
        rows=rows, cols=cols, sparsity=float(sparsity),
        matrix_seed=matrix_seed, vector_seed=vector_seed,
        config=_default_config_items(
            config, vlmax, n_buffers,
            accel=None if variant == "baseline" else variant,
        ),
        verify=verify,
    )


def spmspv_spec(
    size: int, sparsity: float, *, mode: str,
    vector_sparsity: float | None = None,
    matrix_seed: int = 0, vector_seed: int = 1,
    vlmax: int = 8, n_buffers: int = 2,
    config: SystemConfig | None = None, verify: bool = True,
) -> RunSpec:
    """Synthetic SpMSpV point.

    ``mode`` is one of ``'baseline'``, ``'hht_v1'``, ``'hht_v2'``,
    ``'ssr'``, ``'indexmac'``.
    """
    return RunSpec(
        kernel="spmspv", variant=mode,
        rows=size, cols=size, sparsity=float(sparsity),
        vector_sparsity=(
            -1.0 if vector_sparsity is None else float(vector_sparsity)
        ),
        matrix_seed=matrix_seed, vector_seed=vector_seed,
        config=_default_config_items(
            config, vlmax, n_buffers,
            accel=mode if mode in ("ssr", "indexmac") else None,
        ),
        verify=verify,
    )


def programmable_spec(
    shape: tuple[int, int], sparsity: float, *, format_name: str,
    matrix_seed: int = 0, vector_seed: int = 1,
    vlmax: int = 8, n_buffers: int = 2,
    config: SystemConfig | None = None, verify: bool = True,
) -> RunSpec:
    """Programmable-HHT SpMV point running *format_name* firmware."""
    rows, cols = shape
    return RunSpec(
        kernel="spmv_programmable", variant=format_name,
        rows=rows, cols=cols, sparsity=float(sparsity),
        matrix_seed=matrix_seed, vector_seed=vector_seed,
        config=_default_config_items(config, vlmax, n_buffers), verify=verify,
    )


def corpus_spec(
    name: str, *, hht: bool, vector_seed: int = 0,
    vlmax: int = 8, n_buffers: int = 2,
    config: SystemConfig | None = None, verify: bool = True,
) -> RunSpec:
    """SpMV point on a bundled .mtx corpus matrix."""
    return RunSpec(
        kernel="spmv", variant="hht" if hht else "baseline",
        workload="corpus", name=name, vector_seed=vector_seed,
        config=_default_config_items(config, vlmax, n_buffers), verify=verify,
    )


def dnn_spec(
    network: str, *, hht: bool, rows: int | None = None,
    matrix_seed: int = 0, vector_seed: int = 1,
    vlmax: int = 8, n_buffers: int = 2,
    config: SystemConfig | None = None, verify: bool = True,
) -> RunSpec:
    """SpMV point on one Fig. 9 DNN fully-connected layer."""
    return RunSpec(
        kernel="spmv", variant="hht" if hht else "baseline",
        workload="dnn", name=network, dnn_rows=rows or 0,
        matrix_seed=matrix_seed, vector_seed=vector_seed,
        config=_default_config_items(config, vlmax, n_buffers), verify=verify,
    )


# ---------------------------------------------------------------------------
# The executor (module-level so ProcessPoolExecutor can pickle it)
# ---------------------------------------------------------------------------
def execute(spec: RunSpec) -> RunSummary:
    """Run one spec end to end; deterministic in the spec alone."""
    # Late imports: repro.analysis imports repro.exec at module load, so
    # the reverse edge must not exist at import time.
    from ..analysis.runners import run_spmspv, run_spmv, run_spmv_programmable
    from ..workloads.dnn import get_layer
    from ..workloads.mtx_corpus import load_corpus_matrix
    from ..workloads.synthetic import (
        random_csr,
        random_dense_vector,
        random_sparse_vector,
    )

    cfg = thaw_config(spec.config) if spec.config else SystemConfig.paper_table1()
    vlmax = cfg.cpu.vlmax
    n_buffers = cfg.hht.n_buffers

    if spec.workload == "synthetic":
        matrix = random_csr(
            (spec.rows, spec.cols), spec.sparsity, seed=spec.matrix_seed
        )
    elif spec.workload == "corpus":
        matrix = load_corpus_matrix(spec.name)
    else:  # dnn
        matrix = get_layer(spec.name).weights(
            seed=spec.matrix_seed, rows=spec.dnn_rows or None
        )

    if spec.kernel == "spmspv":
        vs = spec.vector_sparsity if spec.vector_sparsity >= 0 else spec.sparsity
        sv = random_sparse_vector(matrix.ncols, vs, seed=spec.vector_seed)
        run = run_spmspv(
            matrix, sv, mode=spec.variant, vlmax=vlmax, n_buffers=n_buffers,
            verify=spec.verify, config=cfg,
        )
    elif spec.kernel == "spmv":
        v = random_dense_vector(matrix.ncols, seed=spec.vector_seed)
        run = run_spmv(
            matrix, v,
            accel=None if spec.variant == "baseline" else spec.variant,
            vlmax=vlmax, n_buffers=n_buffers, verify=spec.verify, config=cfg,
        )
    else:  # spmv_programmable
        v = random_dense_vector(matrix.ncols, seed=spec.vector_seed)
        run = run_spmv_programmable(
            matrix, v, format_name=spec.variant, vlmax=vlmax,
            n_buffers=n_buffers, verify=spec.verify, config=cfg,
        )

    result = run.result
    return RunSummary(
        cycles=result.cycles,
        instructions=result.instructions,
        stats=dict(result.stats),
        frequency_hz=result.frequency_hz,
        y=np.asarray(run.y, dtype=np.float32),
    )
