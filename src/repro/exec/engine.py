"""Fault-tolerant parallel sweep engine: per-spec futures + policy.

:func:`run_specs` is the one entry point the harness uses.  For a batch
of specs it

1. deduplicates identical points (a figure pair often shares its
   baseline run with another figure's sweep),
2. serves whatever the content-addressed cache already holds
   (integrity-checked: corrupt entries are quarantined and counted,
   never silently re-run and overwritten),
3. fans the remaining misses out as *one future per spec* over a
   ``ProcessPoolExecutor`` sized by ``jobs`` / ``$REPRO_JOBS`` /
   ``os.cpu_count()``, governed by an :class:`ExecPolicy` (per-spec
   timeout, whole-batch deadline, bounded retries with seeded-jitter
   backoff, ``on_error`` disposition), and
4. returns summaries *in the order the specs were given* — results are
   position-stable, so parallel runs are byte-identical to serial ones.

Fault tolerance is structural, not best-effort:

* every completed future's summary is cached *immediately*, so a sweep
  killed halfway resumes from what finished;
* a worker crash (``BrokenProcessPool``) is survived by resurrecting
  the pool — the crashing spec is identified via a breadcrumb file the
  worker drops before executing, charged a failure, and retried or
  quarantined, while innocent in-flight specs are relaunched without
  burning a retry;
* per-spec timeouts are enforced *inside* the worker with ``SIGALRM``
  (raising :class:`SpecTimeout` cleanly), backstopped driver-side: a
  worker unresponsive past ``timeout + grace`` is abandoned with its
  pool and the survivors are rescheduled;
* everything that went wrong is accounted in :class:`ExecStats` — new
  counters (retried / failed / corrupt / quarantined / pool restarts)
  plus a structured :class:`FailureReport` of per-spec records.

Deterministic chaos testing hooks in via :mod:`repro.exec.faults`
(``$REPRO_FAULTS``): injection happens only around engine-launched
attempts, so a clean serial run remains the ground truth the chaos
suite compares against.
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Iterable, Sequence

from ..obs.heartbeat import attribute as heartbeat_attribute
from ..obs.heartbeat import beat as heartbeat_beat
from ..obs.heartbeat import clear as heartbeat_clear
from ..obs.heartbeat import read_heartbeats
from ..obs.log import (
    ENV_OBS_DIR,
    HEARTBEAT_DIR,
    NULL_OBS,
    ObsLog,
    worker_writer,
)
from ..obs.progress import ProgressLine
from .cache import (
    ENV_NO_CACHE,
    NullCache,
    ResultCache,
    cache_key,
    code_version,
    payload_key,
)
from .faults import FaultPlan, inject_pre_execute
from .policy import (
    DeadlineExceeded,
    ExecError,
    ExecPolicy,
    FailureRecord,
    FailureReport,
    SpecTimeout,
    WorkerCrash,
)
from .spec import RunSpec, RunSummary, execute

ENV_JOBS = "REPRO_JOBS"

#: Below this many cache misses a worker pool is not worth its fork cost.
_MIN_POOL_BATCH = 2

#: Driver poll interval while futures are outstanding.
_POLL_SECONDS = 0.05

#: Driver-side hang backstop: a worker still running this long past the
#: per-spec timeout (which SIGALRM should have enforced in-worker) is
#: presumed wedged in uninterruptible code and abandoned with its pool.
_HANG_GRACE_SECONDS = 5.0

_UNSET = object()


@dataclass
class ExecStats:
    """Sweep-engine counters (one batch, or the whole session)."""

    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1
    retried: int = 0
    failed: int = 0
    corrupt: int = 0
    quarantined: int = 0
    pool_restarts: int = 0
    heartbeats_seen: int = 0
    events_emitted: int = 0
    log_bytes: int = 0
    failures: list[FailureRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.executed + self.cached

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requested points served from the cache."""
        if self.total <= 0:
            return 0.0
        return self.cached / self.total

    @property
    def points_per_second(self) -> float:
        # Zero-wall-clock batches (empty, or all-cached on a coarse
        # clock) must report 0, not raise or return inf.
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total / self.wall_seconds

    @property
    def failure_report(self) -> FailureReport:
        return FailureReport(list(self.failures))

    def add(self, other: "ExecStats") -> None:
        self.executed += other.executed
        self.cached += other.cached
        self.wall_seconds += other.wall_seconds
        self.jobs = max(self.jobs, other.jobs)
        self.retried += other.retried
        self.failed += other.failed
        self.corrupt += other.corrupt
        self.quarantined += other.quarantined
        self.pool_restarts += other.pool_restarts
        self.heartbeats_seen += other.heartbeats_seen
        self.events_emitted += other.events_emitted
        self.log_bytes += other.log_bytes
        self.failures.extend(other.failures)

    def copy(self) -> "ExecStats":
        return replace(self, failures=list(self.failures))

    def delta(self, before: "ExecStats") -> "ExecStats":
        """Counters accumulated since *before* (a session snapshot)."""
        return ExecStats(
            executed=self.executed - before.executed,
            cached=self.cached - before.cached,
            wall_seconds=self.wall_seconds - before.wall_seconds,
            jobs=self.jobs,
            retried=self.retried - before.retried,
            failed=self.failed - before.failed,
            corrupt=self.corrupt - before.corrupt,
            quarantined=self.quarantined - before.quarantined,
            pool_restarts=self.pool_restarts - before.pool_restarts,
            heartbeats_seen=self.heartbeats_seen - before.heartbeats_seen,
            events_emitted=self.events_emitted - before.events_emitted,
            log_bytes=self.log_bytes - before.log_bytes,
            failures=self.failures[len(before.failures):],
        )

    def throughput_line(self) -> str:
        line = (
            f"sweep engine: {self.executed} simulated + {self.cached} cached "
            f"points in {self.wall_seconds:.2f}s "
            f"({self.points_per_second:.1f} points/s, jobs={self.jobs}, "
            f"cache {self.cache_hit_rate:.0%} hit)"
        )
        extras = [
            f"{count} {name}"
            for name, count in (
                ("retried", self.retried),
                ("failed", self.failed),
                ("quarantined", self.quarantined),
                ("corrupt cache entries", self.corrupt),
                ("pool restarts", self.pool_restarts),
            )
            if count
        ]
        if extras:
            line += " [" + ", ".join(extras) + "]"
        return line

    def as_dict(self) -> dict:
        """JSON-able snapshot (the bench harness records one per run)."""
        return {
            "executed": self.executed,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "points_per_second": self.points_per_second,
            "jobs": self.jobs,
            "retried": self.retried,
            "failed": self.failed,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
            "pool_restarts": self.pool_restarts,
            "cache_hit_rate": self.cache_hit_rate,
            "heartbeats_seen": self.heartbeats_seen,
            "events_emitted": self.events_emitted,
            "log_bytes": self.log_bytes,
            "failures": self.failure_report.to_json_dict(),
        }


_SESSION = ExecStats()
_DEFAULT_JOBS: int | None = None
_DEFAULT_USE_CACHE: bool | None = None
_DEFAULT_OBS_DIR: str | None = None
_DEFAULT_PROGRESS: bool | None = None
_POLICY_OVERRIDES: dict = {}


def configure(*, jobs=_UNSET, use_cache=_UNSET, timeout=_UNSET,
              deadline=_UNSET, retries=_UNSET, on_error=_UNSET,
              obs_dir=_UNSET, progress=_UNSET) -> None:
    """Set process-wide defaults (the CLI's --jobs / --retries / … flags).

    ``None`` restores "decide from the environment" for that option.
    ``obs_dir`` arms sweep event logging: a path roots the log there,
    ``""`` uses the default obs root (``$REPRO_OBS_DIR`` or
    ``~/.cache/repro/obs``).  ``progress`` forces the live TTY progress
    line on/off (``None`` = auto: on only when stderr is a TTY).
    """
    global _DEFAULT_JOBS, _DEFAULT_USE_CACHE, _DEFAULT_OBS_DIR, \
        _DEFAULT_PROGRESS
    if jobs is not _UNSET:
        _DEFAULT_JOBS = None if jobs is None else max(1, int(jobs))
    if use_cache is not _UNSET:
        _DEFAULT_USE_CACHE = use_cache
    if obs_dir is not _UNSET:
        _DEFAULT_OBS_DIR = obs_dir
    if progress is not _UNSET:
        _DEFAULT_PROGRESS = progress
    for name, value in (("timeout", timeout), ("deadline", deadline),
                        ("retries", retries), ("on_error", on_error)):
        if value is _UNSET:
            continue
        if value is None:
            _POLICY_OVERRIDES.pop(name, None)
        else:
            _POLICY_OVERRIDES[name] = value


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg > configure() > $REPRO_JOBS > cpu_count."""
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        if env:
            jobs = int(env)
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_policy(policy: ExecPolicy | None = None) -> ExecPolicy:
    """Policy: explicit arg > configure() overrides > $REPRO_* env."""
    if policy is not None:
        return policy
    base = ExecPolicy.from_env()
    if _POLICY_OVERRIDES:
        base = replace(base, **_POLICY_OVERRIDES)
    return base


def caching_enabled() -> bool:
    if _DEFAULT_USE_CACHE is not None:
        return _DEFAULT_USE_CACHE
    return not os.environ.get(ENV_NO_CACHE, "").strip()


def open_cache() -> ResultCache | NullCache:
    """The cache run_specs uses when none is passed explicitly."""
    return ResultCache() if caching_enabled() else NullCache()


def resolve_obs_dir() -> str | None:
    """Obs root: configure() > ``$REPRO_OBS_DIR`` > off (None).

    ``""`` means "armed, default root"; ``None`` means logging is off.
    """
    if _DEFAULT_OBS_DIR is not None:
        return _DEFAULT_OBS_DIR
    env = os.environ.get(ENV_OBS_DIR, "").strip()
    if env:
        return env
    return None


def open_obs() -> ObsLog | None:
    """A fresh sweep log when obs is armed, else None (logging off)."""
    root = resolve_obs_dir()
    if root is None:
        return None
    return ObsLog.create(root or None)


def resolve_progress(progress: bool | None = None) -> bool | None:
    """Progress-line wish: explicit arg > configure() > auto (None)."""
    if progress is not None:
        return progress
    return _DEFAULT_PROGRESS


def session_stats() -> ExecStats:
    """Totals accumulated by every run_specs call in this process."""
    return _SESSION.copy()


def reset_session_stats() -> None:
    global _SESSION
    _SESSION = ExecStats()


# ---------------------------------------------------------------------------
# Worker-side attempt (module-level so ProcessPoolExecutor can pickle it)
# ---------------------------------------------------------------------------
@contextmanager
def _spec_alarm(seconds: float | None, *, key: str, label: str, attempt: int):
    """Raise :class:`SpecTimeout` in-place after *seconds* (SIGALRM).

    No-op when there is no timeout, no SIGALRM on this platform, or we
    are not on the main thread (signal handlers are main-thread-only);
    the driver-side hang backstop still covers those cases.
    """
    usable = (
        seconds is not None and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise SpecTimeout(
            f"spec exceeded its {seconds}s timeout (attempt {attempt})",
            key=key, label=label, attempts=attempt,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: The breadcrumb of the spec this worker is currently executing, so
#: the SIGTERM handler can clear it (see :func:`_worker_init`).
_ACTIVE_CRUMB: Path | None = None


def _worker_sigterm(signum, frame):
    # When one worker crashes, the executor SIGTERMs the *other*
    # workers while tearing the pool down.  Those are victims, not
    # culprits: remove their breadcrumb so only the spec whose worker
    # genuinely died (os._exit / segfault / SIGKILL skip this handler)
    # is charged with the crash.
    crumb = _ACTIVE_CRUMB
    if crumb is not None:
        try:
            crumb.unlink()
        except OSError:
            pass
    os._exit(143)


def _worker_init() -> None:
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, _worker_sigterm)


def _worker_attempt(spec: RunSpec, key: str, fkey: str, label: str,
                    attempt: int, timeout: float | None, faults_text: str,
                    crumb_dir: str, obs_dir: str = "",
                    sweep_id: str = "") -> RunSummary:
    """One attempt at one spec, inside a pool worker.

    Drops a breadcrumb file first and removes it on any non-crash exit
    (including executor-initiated SIGTERM): after a
    ``BrokenProcessPool`` the surviving breadcrumbs name exactly the
    specs whose workers died, so the driver can attribute the crash
    instead of penalising every in-flight spec.  ``fkey`` is the
    code-version-independent :func:`~repro.exec.cache.payload_key`
    (fault rolls and breadcrumbs key on it); ``key`` is the cache key
    (reported in errors, and the obs correlation key).

    With ``obs_dir`` set the worker also touches its heartbeat record
    and appends ``attempt.start`` / ``attempt.ok`` / ``attempt.error``
    (and any ``fault.injected``) to its own per-pid event file — every
    line flushed, so a crash mid-attempt still leaves the attempt's
    trail on disk.
    """
    global _ACTIVE_CRUMB
    crumb: Path | None = None
    if crumb_dir:
        crumb = Path(crumb_dir) / f"{fkey}.{os.getpid()}.{attempt}"
        _ACTIVE_CRUMB = crumb
        try:
            crumb.write_text(label)
        except OSError:
            crumb = None
            _ACTIVE_CRUMB = None
    writer = None
    heartbeat_dir = ""
    if obs_dir:
        writer = worker_writer(obs_dir, sweep_id)
        heartbeat_dir = os.path.join(obs_dir, HEARTBEAT_DIR)
        heartbeat_beat(heartbeat_dir, key=key, label=label, attempt=attempt)
        writer.emit("attempt.start", key=key, label=label, attempt=attempt)
    attempt_started = perf_counter()
    try:
        with _spec_alarm(timeout, key=key, label=label, attempt=attempt):
            plan = FaultPlan.parse(faults_text)
            if plan.active:
                inject_pre_execute(plan, fkey, attempt, label=label,
                                   in_worker=True, obs=writer,
                                   event_key=key)
            summary = execute(spec)
    except BaseException as exc:
        if writer is not None:
            writer.emit(
                "attempt.error", key=key, label=label, attempt=attempt,
                category=getattr(exc, "category", type(exc).__name__),
                seconds=round(perf_counter() - attempt_started, 6),
                message=str(exc)[:200],
            )
            heartbeat_clear(heartbeat_dir)
        raise
    else:
        if writer is not None:
            writer.emit(
                "attempt.ok", key=key, label=label, attempt=attempt,
                seconds=round(perf_counter() - attempt_started, 6),
            )
            heartbeat_clear(heartbeat_dir)
        return summary
    finally:
        if crumb is not None:
            try:
                crumb.unlink()
            except OSError:
                pass
        _ACTIVE_CRUMB = None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
@dataclass
class _Pending:
    """Driver-side bookkeeping for one deduplicated spec."""

    spec: RunSpec
    key: str               # cache key (content + code-version salt)
    fkey: str              # payload key (fault rolls / crumbs; code-stable)
    label: str
    indices: list[int]
    attempts: int = 0          # attempts launched so far
    failures: int = 0
    ready_at: float = 0.0      # perf_counter() time of next launch
    running_since: float | None = None
    last_error: ExecError | None = None


class _Driver:
    """Executes one batch of misses under a policy (serial or pooled)."""

    def __init__(self, *, policy: ExecPolicy, plan: FaultPlan,
                 cache, results: list, stats: ExecStats,
                 deadline_at: float | None, workers: int,
                 obs=NULL_OBS, progress: ProgressLine | None = None):
        self.policy = policy
        self.plan = plan
        self.cache = cache
        self.results = results
        self.stats = stats
        self.deadline_at = deadline_at
        self.workers = workers
        self.obs = obs
        self.progress = progress
        self.quarantine_after = (
            policy.quarantine_after if policy.quarantine_after is not None
            else policy.retries + 2
        )
        self._heartbeat_updates: dict[int, float] = {}
        self._last_obs_poll = 0.0

    # -- observability -----------------------------------------------------
    def _tick(self, running: int = 0, force: bool = False) -> None:
        """Refresh the live progress line from the shared counters."""
        if self.progress is None:
            return
        self.progress.update(
            done=(self.stats.cached + self.stats.executed
                  + self.stats.failed),
            running=running, retried=self.stats.retried,
            failed=self.stats.failed, cached=self.stats.cached,
            force=force,
        )

    def _poll_observability(self, inflight: dict) -> None:
        """Fold worker heartbeats into counters + progress (throttled)."""
        if not (self.obs or self.progress):
            return
        now = perf_counter()
        if now - self._last_obs_poll < 0.25:
            return
        self._last_obs_poll = now
        running = len(inflight)
        if self.obs:
            beats = read_heartbeats(self.obs.heartbeat_dir)
            for pid, hb in beats.items():
                if self._heartbeat_updates.get(pid) != hb.updated:
                    self._heartbeat_updates[pid] = hb.updated
                    self.stats.heartbeats_seen += 1
            busy = sum(1 for hb in beats.values() if hb.busy)
            if busy:
                running = busy  # specs actually executing, not just queued
        self._tick(running=running)

    # -- shared bookkeeping ------------------------------------------------
    def _complete(self, p: _Pending, summary: RunSummary) -> None:
        # Incremental persistence: a killed sweep resumes from here.
        self.cache.put(p.spec, summary, provenance={"attempts": p.attempts})
        for i in p.indices:
            self.results[i] = summary
        self.stats.executed += 1
        if p.failures and p.last_error is not None:
            self.stats.failures.append(FailureRecord(
                key=p.key, label=p.label,
                category=p.last_error.category,
                message=str(p.last_error),
                attempts=p.attempts, resolved=True,
            ))
        if self.obs:
            self.obs.emit("cache.write", key=p.key, label=p.label)
            self.obs.emit("spec.completed", key=p.key, label=p.label,
                          attempt=p.attempts, failures=p.failures)
        self._tick()

    def _fail(self, p: _Pending, error: ExecError, *,
              quarantined: bool = False) -> None:
        self.stats.failed += 1
        if quarantined:
            self.stats.quarantined += 1
        self.stats.failures.append(FailureRecord(
            key=p.key, label=p.label, category=error.category,
            message=str(error), attempts=p.attempts,
            resolved=False, quarantined=quarantined,
        ))
        if self.obs:
            self.obs.emit(
                "spec.quarantined" if quarantined else "spec.failed",
                key=p.key, label=p.label, attempt=p.attempts,
                category=error.category, message=str(error)[:200],
            )
        self._tick()
        if self.policy.on_error == "raise":
            raise error
        if self.policy.on_error == "collect":
            for i in p.indices:
                self.results[i] = error
        # "skip": the result slots stay None.

    def _wrap(self, p: _Pending, exc: BaseException) -> ExecError:
        if isinstance(exc, ExecError):
            exc.key = exc.key or p.key
            exc.label = exc.label or p.label
            exc.attempts = exc.attempts or p.attempts
            return exc
        return ExecError(
            f"{type(exc).__name__}: {exc}",
            key=p.key, label=p.label, attempts=p.attempts,
        )

    def _handle_failure(self, p: _Pending, error: ExecError) -> bool:
        """Record one failed attempt; True when the spec should relaunch."""
        p.failures += 1
        p.last_error = error
        if self.obs and isinstance(error, SpecTimeout):
            self.obs.emit("spec.timeout", key=p.key, label=p.label,
                          attempt=p.attempts, message=str(error)[:200])
        if p.failures >= self.quarantine_after:
            self._fail(p, error, quarantined=True)
            return False
        if error.retryable and p.attempts < self.policy.max_attempts:
            self.stats.retried += 1
            delay = self.policy.retry_delay(p.fkey, p.attempts)
            p.ready_at = perf_counter() + delay
            if self.obs:
                self.obs.emit("retry", key=p.key, label=p.label,
                              attempt=p.attempts, category=error.category,
                              delay=round(delay, 4))
            return True
        self._fail(p, error)
        return False

    def _fail_deadline(self, pendings: list[_Pending]) -> None:
        for p in pendings:
            self._fail(p, DeadlineExceeded(
                f"batch exceeded its {self.policy.deadline}s deadline "
                f"with {len(pendings)} point(s) unfinished",
                key=p.key, label=p.label, attempts=p.attempts,
            ))

    # -- serial path -------------------------------------------------------
    def run_serial(self, pending: list[_Pending]) -> None:
        queue = list(pending)
        while queue:
            p = queue.pop(0)
            now = perf_counter()
            if self.deadline_at is not None and now >= self.deadline_at:
                self._fail_deadline([p] + queue)
                return
            if p.ready_at > now:
                time.sleep(p.ready_at - now)
            p.attempts += 1
            if self.obs:
                self.obs.emit("attempt.start", key=p.key, label=p.label,
                              attempt=p.attempts)
            attempt_started = perf_counter()
            try:
                with _spec_alarm(self.policy.timeout, key=p.key,
                                 label=p.label, attempt=p.attempts):
                    if self.plan.active:
                        # Serially a "crash" is simulated by raising —
                        # killing this process would take the caller too.
                        inject_pre_execute(self.plan, p.fkey, p.attempts,
                                           label=p.label, in_worker=False,
                                           obs=self.obs if self.obs else None,
                                           event_key=p.key)
                    summary = execute(p.spec)
            except Exception as exc:
                if self.obs:
                    self.obs.emit(
                        "attempt.error", key=p.key, label=p.label,
                        attempt=p.attempts,
                        category=getattr(exc, "category",
                                         type(exc).__name__),
                        seconds=round(perf_counter() - attempt_started, 6),
                        message=str(exc)[:200],
                    )
                if self._handle_failure(p, self._wrap(p, exc)):
                    queue.append(p)
                continue
            if self.obs:
                self.obs.emit(
                    "attempt.ok", key=p.key, label=p.label,
                    attempt=p.attempts,
                    seconds=round(perf_counter() - attempt_started, 6),
                )
            self._complete(p, summary)

    # -- pooled path -------------------------------------------------------
    def run_pool(self, pending: list[_Pending]) -> None:
        crumb_dir = Path(tempfile.mkdtemp(prefix="repro-exec-crumbs-"))
        pool = ProcessPoolExecutor(max_workers=self.workers,
                                   initializer=_worker_init)
        waiting = list(pending)
        inflight: dict[Future, _Pending] = {}
        faults_text = self.plan.spec_string() if self.plan.active else ""
        obs_dir = str(self.obs.sweep_dir) if self.obs else ""
        sweep_id = self.obs.sweep_id if self.obs else ""
        try:
            while waiting or inflight:
                now = perf_counter()
                if self.deadline_at is not None and now >= self.deadline_at:
                    self._fail_deadline(waiting + list(inflight.values()))
                    return
                for p in [p for p in waiting if p.ready_at <= now]:
                    waiting.remove(p)
                    p.attempts += 1
                    p.running_since = None
                    try:
                        future = pool.submit(
                            _worker_attempt, p.spec, p.key, p.fkey,
                            p.label, p.attempts, self.policy.timeout,
                            faults_text, str(crumb_dir), obs_dir, sweep_id,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        # Pool died between completions: undo the launch
                        # and resurrect before trying again.
                        p.attempts -= 1
                        waiting.append(p)
                        pool = self._resurrect(pool, inflight, waiting,
                                               crumb_dir)
                        break
                    inflight[future] = p
                if not inflight:
                    if waiting:
                        time.sleep(_POLL_SECONDS)
                    continue
                done, _ = wait(set(inflight), timeout=_POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    p = inflight.pop(future)
                    try:
                        summary = future.result()
                    except BrokenProcessPool:
                        inflight[future] = p  # group handler sorts it out
                        broken = True
                        break
                    except Exception as exc:
                        if self._handle_failure(p, self._wrap(p, exc)):
                            waiting.append(p)
                    else:
                        self._complete(p, summary)
                if broken:
                    pool = self._resurrect(pool, inflight, waiting, crumb_dir)
                    continue
                self._note_running(inflight)
                self._poll_observability(inflight)
                hung = [(f, p) for f, p in inflight.items()
                        if self._is_hung(p)]
                if hung:
                    pool = self._abandon_hung(pool, hung, inflight, waiting,
                                              crumb_dir)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            shutil.rmtree(crumb_dir, ignore_errors=True)

    def _note_running(self, inflight: dict[Future, _Pending]) -> None:
        now = perf_counter()
        for future, p in inflight.items():
            if p.running_since is None and future.running():
                p.running_since = now

    def _is_hung(self, p: _Pending) -> bool:
        if self.policy.timeout is None or p.running_since is None:
            return False
        limit = self.policy.timeout + _HANG_GRACE_SECONDS
        return perf_counter() - p.running_since > limit

    def _drain_crumbs(self, crumb_dir: Path,
                      settle_seconds: float = 2.0) -> set[str]:
        """Collect (and clear) crash breadcrumbs once the set settles.

        When the pool breaks, the executor SIGTERMs surviving workers
        *concurrently* with our cleanup; their handlers unlink their own
        breadcrumbs on the way out.  Poll until the set stops changing
        so a dying victim is not misread as a crasher — what remains
        afterwards belongs to workers that died without cleanup.
        """
        deadline = perf_counter() + settle_seconds
        previous: set[str] | None = None
        while True:
            try:
                current = {p.name for p in crumb_dir.glob("*")}
            except OSError:
                current = set()
            if current == previous or perf_counter() >= deadline:
                break
            previous = current
            time.sleep(0.1)
        crashed: set[str] = set()
        for name in current:
            crashed.add(name.split(".", 1)[0])
            try:
                (crumb_dir / name).unlink()
            except OSError:
                pass
        return crashed

    def _resurrect(self, pool: ProcessPoolExecutor,
                   inflight: dict[Future, _Pending],
                   waiting: list[_Pending],
                   crumb_dir: Path) -> ProcessPoolExecutor:
        """Replace a broken pool, attributing the crash via breadcrumbs."""
        self.stats.pool_restarts += 1
        pool.shutdown(wait=False, cancel_futures=True)
        crashed = self._drain_crumbs(crumb_dir)
        if self.obs:
            self.obs.emit("pool.restart", reason="broken-pool",
                          crashed=len(crashed))
        heartbeats = (read_heartbeats(self.obs.heartbeat_dir)
                      if self.obs else {})
        for future, p in list(inflight.items()):
            del inflight[future]
            if future.done():
                # A result that landed before the pool broke still counts.
                try:
                    summary = future.result()
                except Exception:
                    pass
                else:
                    self._complete(p, summary)
                    continue
            if p.fkey in crashed:
                error = WorkerCrash(
                    f"worker process died mid-spec (attempt {p.attempts})",
                    key=p.key, label=p.label, attempts=p.attempts,
                )
                if self.obs:
                    hb = heartbeat_attribute(heartbeats, p.key)
                    self.obs.emit("worker.crash", key=p.key, label=p.label,
                                  attempt=p.attempts,
                                  worker_pid=hb.pid if hb else 0)
                if self._handle_failure(p, error):
                    waiting.append(p)
            else:
                # Innocent bystander: relaunch without burning a retry.
                p.attempts -= 1
                p.ready_at = 0.0
                waiting.append(p)
        return ProcessPoolExecutor(max_workers=self.workers,
                                   initializer=_worker_init)

    def _abandon_hung(self, pool: ProcessPoolExecutor,
                      hung: list[tuple[Future, _Pending]],
                      inflight: dict[Future, _Pending],
                      waiting: list[_Pending],
                      crumb_dir: Path) -> ProcessPoolExecutor:
        """Abandon wedged workers (and their pool); reschedule survivors."""
        self.stats.pool_restarts += 1
        pool.shutdown(wait=False, cancel_futures=True)
        self._drain_crumbs(crumb_dir)
        # Heartbeats attribute the hang: the wedged worker cannot report
        # its own demise, but its last beat names the spec it was holding.
        heartbeats = (read_heartbeats(self.obs.heartbeat_dir)
                      if self.obs else {})
        if self.obs:
            self.obs.emit("pool.restart", reason="hung-workers",
                          hung=len(hung))
        hung_set = {f for f, _ in hung}
        for future, p in list(inflight.items()):
            del inflight[future]
            if future in hung_set:
                hb = heartbeat_attribute(heartbeats, p.key)
                held = (f"; worker pid {hb.pid} last heartbeat "
                        f"{hb.age():.1f}s ago" if hb else "")
                error = SpecTimeout(
                    f"worker unresponsive {_HANG_GRACE_SECONDS}s past the "
                    f"{self.policy.timeout}s timeout "
                    f"(attempt {p.attempts}){held}",
                    key=p.key, label=p.label, attempts=p.attempts,
                )
                if self.obs:
                    self.obs.emit(
                        "worker.hung", key=p.key, label=p.label,
                        attempt=p.attempts,
                        worker_pid=hb.pid if hb else 0,
                        heartbeat_age=round(hb.age(), 3) if hb else -1.0,
                    )
                if self._handle_failure(p, error):
                    waiting.append(p)
            elif future.done():
                try:
                    summary = future.result()
                except Exception as exc:
                    if self._handle_failure(p, self._wrap(p, exc)):
                        waiting.append(p)
                else:
                    self._complete(p, summary)
            else:
                p.attempts -= 1
                p.ready_at = 0.0
                waiting.append(p)
        return ProcessPoolExecutor(max_workers=self.workers,
                                   initializer=_worker_init)


def _absorb_cache_corruption(cache, stats: ExecStats, obs=NULL_OBS) -> None:
    """Fold the cache's quarantine events into the batch stats."""
    drain = getattr(cache, "drain_corruption_events", None)
    if drain is None:
        return
    for event in drain():
        stats.corrupt += 1
        stats.failures.append(FailureRecord(
            key=event.key, label=event.path,
            category="cache-corruption",
            message=event.reason, attempts=0,
            resolved=True,  # quarantined + re-executed, not trusted
        ))
        if obs:
            obs.emit("cache.corrupt", key=event.key,
                     path=event.path, reason=event.reason[:200])


def run_specs(
    specs: Iterable[RunSpec] | Sequence[RunSpec],
    *,
    jobs: int | None = None,
    cache: ResultCache | NullCache | None = None,
    policy: ExecPolicy | None = None,
    faults: FaultPlan | None = None,
    obs=None,
    progress: bool | None = None,
) -> list[RunSummary]:
    """Run every spec (cache-first, then parallel); order-preserving.

    ``policy`` governs timeouts/retries/failure disposition (default:
    ``$REPRO_TIMEOUT``-family env vars via :func:`resolve_policy`);
    ``faults`` arms deterministic fault injection (default:
    ``$REPRO_FAULTS``).  With ``on_error="skip"`` failed slots hold
    ``None``; with ``"collect"`` they hold the :class:`ExecError`.

    ``obs`` attaches a sweep event log (default: :func:`open_obs`, which
    is off unless ``--obs-log`` / ``$REPRO_OBS_DIR`` armed it — pass
    :data:`~repro.obs.NULL_OBS` to force it off); ``progress`` forces
    the live TTY progress line on/off (default: auto).
    """
    specs = list(specs)
    if not specs:
        return []
    if cache is None:
        cache = open_cache()
    jobs = resolve_jobs(jobs)
    policy = resolve_policy(policy)
    plan = faults if faults is not None else FaultPlan.from_env()
    if obs is None:
        obs = open_obs() or NULL_OBS

    started = perf_counter()
    stats = ExecStats(jobs=jobs)
    results: list = [None] * len(specs)

    # Deduplicate: identical specs simulate (or hit the cache) once.
    positions: dict[RunSpec, list[int]] = {}
    for i, spec in enumerate(specs):
        positions.setdefault(spec, []).append(i)

    if obs:
        obs.emit(
            "sweep.start", n_specs=len(specs), n_unique=len(positions),
            jobs=jobs, policy=policy.to_json_dict(),
            faults=plan.spec_string() if plan.active else "",
            code=code_version(), host=socket.gethostname(),
        )

    pending: list[_Pending] = []
    for spec, indices in positions.items():
        summary = cache.get(spec)
        if summary is None:
            p = _Pending(
                spec=spec, key=cache_key(spec), fkey=payload_key(spec),
                label=spec.label, indices=indices,
            )
            pending.append(p)
            if obs:
                obs.emit("cache.miss", key=p.key, label=p.label)
                obs.emit("spec.submitted", key=p.key, label=p.label,
                         duplicates=len(indices))
        else:
            for i in indices:
                results[i] = summary
            if obs:
                obs.emit("cache.hit", key=cache_key(spec), label=spec.label)
    stats.cached = len(positions) - len(pending)
    _absorb_cache_corruption(cache, stats, obs)

    # While the log records, route cache-corrupt fault injections into
    # it too — the one fault kind that trips outside an attempt.
    armed_cache_hook = False
    if obs and getattr(cache, "on_fault", _UNSET) is None:
        cache.on_fault = lambda key: obs.emit("fault.injected", key=key,
                                              kind="cache-corrupt")
        armed_cache_hook = True

    progress_line: ProgressLine | None = None
    try:
        if pending:
            wish = resolve_progress(progress)
            if wish is not False:
                progress_line = ProgressLine(len(positions), enabled=wish)
                if not progress_line.enabled:
                    progress_line = None
            workers = min(jobs, len(pending))
            driver = _Driver(
                policy=policy, plan=plan, cache=cache, results=results,
                stats=stats, workers=workers, obs=obs,
                progress=progress_line,
                deadline_at=(started + policy.deadline
                             if policy.deadline else None),
            )
            driver._tick(force=True)
            if workers >= 2 and len(pending) >= _MIN_POOL_BATCH:
                driver.run_pool(pending)
            else:
                driver.run_serial(pending)
    finally:
        # Whatever happened — including on_error="raise" — the completed
        # points are cached, the log is sealed and the session charged.
        stats.wall_seconds = perf_counter() - started
        if armed_cache_hook:
            cache.on_fault = None
        if progress_line is not None:
            progress_line.close()
        if obs:
            obs.emit("sweep.end", stats=stats.as_dict())
            stats.events_emitted, stats.log_bytes = obs.finalize()
            obs.write_stats(stats.as_dict())
        _SESSION.add(stats)
    return results
