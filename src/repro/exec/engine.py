"""Parallel sweep engine: fan RunSpecs out across worker processes.

:func:`run_specs` is the one entry point the harness uses.  For a batch
of specs it

1. deduplicates identical points (a figure pair often shares its
   baseline run with another figure's sweep),
2. serves whatever the content-addressed cache already holds,
3. fans the remaining misses out over a ``ProcessPoolExecutor`` sized by
   ``jobs`` / ``$REPRO_JOBS`` / ``os.cpu_count()``, and
4. returns summaries *in the order the specs were given* — results are
   position-stable, so parallel runs are byte-identical to serial ones.

Per-process totals accumulate in a session counter that the CLI prints
as a throughput line (points simulated / cached / points-per-second),
making the speedup — and a warm cache's "0 simulated" — observable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Iterable, Sequence

from .cache import ENV_NO_CACHE, NullCache, ResultCache
from .spec import RunSpec, RunSummary, execute

ENV_JOBS = "REPRO_JOBS"

#: Below this many cache misses a worker pool is not worth its fork cost.
_MIN_POOL_BATCH = 2

_UNSET = object()


@dataclass
class ExecStats:
    """Sweep-engine counters (one batch, or the whole session)."""

    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1

    @property
    def total(self) -> int:
        return self.executed + self.cached

    @property
    def points_per_second(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def add(self, other: "ExecStats") -> None:
        self.executed += other.executed
        self.cached += other.cached
        self.wall_seconds += other.wall_seconds
        self.jobs = max(self.jobs, other.jobs)

    def throughput_line(self) -> str:
        return (
            f"sweep engine: {self.executed} simulated + {self.cached} cached "
            f"points in {self.wall_seconds:.2f}s "
            f"({self.points_per_second:.1f} points/s, jobs={self.jobs})"
        )

    def as_dict(self) -> dict:
        """JSON-able snapshot (the bench harness records one per run)."""
        return {
            "executed": self.executed,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "points_per_second": self.points_per_second,
            "jobs": self.jobs,
        }


_SESSION = ExecStats()
_DEFAULT_JOBS: int | None = None
_DEFAULT_USE_CACHE: bool | None = None


def configure(*, jobs=_UNSET, use_cache=_UNSET) -> None:
    """Set process-wide defaults (the CLI's --jobs / --no-cache flags).

    ``None`` restores "decide from the environment" for that option.
    """
    global _DEFAULT_JOBS, _DEFAULT_USE_CACHE
    if jobs is not _UNSET:
        _DEFAULT_JOBS = None if jobs is None else max(1, int(jobs))
    if use_cache is not _UNSET:
        _DEFAULT_USE_CACHE = use_cache


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg > configure() > $REPRO_JOBS > cpu_count."""
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        if env:
            jobs = int(env)
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def caching_enabled() -> bool:
    if _DEFAULT_USE_CACHE is not None:
        return _DEFAULT_USE_CACHE
    return not os.environ.get(ENV_NO_CACHE, "").strip()


def open_cache() -> ResultCache | NullCache:
    """The cache run_specs uses when none is passed explicitly."""
    return ResultCache() if caching_enabled() else NullCache()


def session_stats() -> ExecStats:
    """Totals accumulated by every run_specs call in this process."""
    return replace(_SESSION)


def reset_session_stats() -> None:
    global _SESSION
    _SESSION = ExecStats()


def run_specs(
    specs: Iterable[RunSpec] | Sequence[RunSpec],
    *,
    jobs: int | None = None,
    cache: ResultCache | NullCache | None = None,
) -> list[RunSummary]:
    """Run every spec (cache-first, then parallel); order-preserving."""
    specs = list(specs)
    if not specs:
        return []
    if cache is None:
        cache = open_cache()
    jobs = resolve_jobs(jobs)

    started = perf_counter()
    results: list[RunSummary | None] = [None] * len(specs)

    # Deduplicate: identical specs simulate (or hit the cache) once.
    positions: dict[RunSpec, list[int]] = {}
    for i, spec in enumerate(specs):
        positions.setdefault(spec, []).append(i)

    misses: list[RunSpec] = []
    for spec, indices in positions.items():
        summary = cache.get(spec)
        if summary is None:
            misses.append(spec)
        else:
            for i in indices:
                results[i] = summary

    if misses:
        workers = min(jobs, len(misses))
        if workers >= 2 and len(misses) >= _MIN_POOL_BATCH:
            chunksize = max(1, len(misses) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                summaries = list(pool.map(execute, misses, chunksize=chunksize))
        else:
            summaries = [execute(spec) for spec in misses]
        for spec, summary in zip(misses, summaries):
            cache.put(spec, summary)
            for i in positions[spec]:
                results[i] = summary

    batch = ExecStats(
        executed=len(misses),
        cached=len(positions) - len(misses),
        wall_seconds=perf_counter() - started,
        jobs=jobs,
    )
    _SESSION.add(batch)
    return results  # type: ignore[return-value]  # every slot is filled
