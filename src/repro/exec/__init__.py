"""Fault-tolerant parallel sweep engine with an integrity-checked cache.

The experiment harness expresses every simulation as a picklable
:class:`RunSpec`; :func:`run_specs` deduplicates a batch, serves
already-simulated points from the persistent cache (quarantining
corrupt entries), and fans the rest out across worker processes — one
future per spec, under an :class:`ExecPolicy` of timeouts, bounded
retries and failure disposition, surviving worker crashes by pool
resurrection.  :mod:`repro.exec.faults` injects deterministic chaos
(``$REPRO_FAULTS``) to prove all of it.  See :mod:`repro.exec.spec`,
:mod:`repro.exec.cache`, :mod:`repro.exec.policy` and
:mod:`repro.exec.engine`.
"""

from .cache import (
    ENV_CACHE_DIR,
    ENV_NO_CACHE,
    CacheAudit,
    CorruptionEvent,
    NullCache,
    ResultCache,
    cache_key,
    code_version,
    default_cache_dir,
    payload_key,
    run_provenance,
    summary_digest,
)
from .engine import (
    ENV_JOBS,
    ExecStats,
    caching_enabled,
    configure,
    open_cache,
    open_obs,
    reset_session_stats,
    resolve_jobs,
    resolve_obs_dir,
    resolve_policy,
    resolve_progress,
    run_specs,
    session_stats,
)
from .faults import ENV_FAULTS, FaultPlan
from .policy import (
    ENV_DEADLINE,
    ENV_ON_ERROR,
    ENV_RETRIES,
    ENV_TIMEOUT,
    CacheCorruption,
    DeadlineExceeded,
    ExecError,
    ExecPolicy,
    FailureRecord,
    FailureReport,
    SpecTimeout,
    TransientFault,
    WorkerCrash,
)
from .spec import (
    RunSpec,
    RunSummary,
    corpus_spec,
    dnn_spec,
    execute,
    freeze_config,
    programmable_spec,
    spmspv_spec,
    spmv_spec,
    thaw_config,
)

__all__ = [
    "CacheAudit",
    "CacheCorruption",
    "CorruptionEvent",
    "DeadlineExceeded",
    "ENV_CACHE_DIR",
    "ENV_DEADLINE",
    "ENV_FAULTS",
    "ENV_JOBS",
    "ENV_NO_CACHE",
    "ENV_ON_ERROR",
    "ENV_RETRIES",
    "ENV_TIMEOUT",
    "ExecError",
    "ExecPolicy",
    "ExecStats",
    "FailureRecord",
    "FailureReport",
    "FaultPlan",
    "NullCache",
    "ResultCache",
    "RunSpec",
    "RunSummary",
    "SpecTimeout",
    "TransientFault",
    "WorkerCrash",
    "cache_key",
    "caching_enabled",
    "code_version",
    "configure",
    "corpus_spec",
    "default_cache_dir",
    "dnn_spec",
    "execute",
    "freeze_config",
    "open_cache",
    "open_obs",
    "payload_key",
    "programmable_spec",
    "reset_session_stats",
    "resolve_jobs",
    "resolve_obs_dir",
    "resolve_policy",
    "resolve_progress",
    "run_provenance",
    "run_specs",
    "session_stats",
    "spmspv_spec",
    "spmv_spec",
    "summary_digest",
    "thaw_config",
]
