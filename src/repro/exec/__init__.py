"""Parallel sweep engine with a content-addressed run cache.

The experiment harness expresses every simulation as a picklable
:class:`RunSpec`; :func:`run_specs` deduplicates a batch, serves
already-simulated points from the persistent cache and fans the rest
out across worker processes.  See :mod:`repro.exec.spec`,
:mod:`repro.exec.cache` and :mod:`repro.exec.engine`.
"""

from .cache import (
    ENV_CACHE_DIR,
    ENV_NO_CACHE,
    NullCache,
    ResultCache,
    cache_key,
    code_version,
    default_cache_dir,
)
from .engine import (
    ENV_JOBS,
    ExecStats,
    caching_enabled,
    configure,
    open_cache,
    reset_session_stats,
    resolve_jobs,
    run_specs,
    session_stats,
)
from .spec import (
    RunSpec,
    RunSummary,
    corpus_spec,
    dnn_spec,
    execute,
    freeze_config,
    programmable_spec,
    spmspv_spec,
    spmv_spec,
    thaw_config,
)

__all__ = [
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "ENV_NO_CACHE",
    "ExecStats",
    "NullCache",
    "ResultCache",
    "RunSpec",
    "RunSummary",
    "cache_key",
    "caching_enabled",
    "code_version",
    "configure",
    "corpus_spec",
    "default_cache_dir",
    "dnn_spec",
    "execute",
    "freeze_config",
    "open_cache",
    "programmable_spec",
    "reset_session_stats",
    "resolve_jobs",
    "run_specs",
    "session_stats",
    "spmspv_spec",
    "spmv_spec",
    "thaw_config",
]
