"""Component tree base class and the flat stats registry.

Every timed block of the simulated SoC (CPU, HHT, bus, memory port,
L1D cache, ...) derives from :class:`SimComponent`.  A component has a
*name*, an ordered list of *children*, and two tree-wide operations:

* ``reset()`` — restore the component and every descendant to its
  power-on state (architectural state *and* counters), and
* ``stats()`` — collect every counter in the subtree into one flat
  ``{"soc.l1d.hits": 123, ...}`` mapping.

Registry keys are dotted paths built from component names.  A component
constructed with an empty name is *transparent*: it contributes no path
segment, so purely structural wrappers (the bus, the memory-system
facade) do not show up in key paths.  The Table-1 SoC produces the
namespaces ``soc.cpu.*``, ``soc.hht.*`` (``soc.hht0.*`` ... when several
helper threads are attached), ``soc.ram.*`` and ``soc.l1d.*``.

Subclasses override the two ``_local_*`` hooks; the tree recursion is
provided here and should not be overridden:

* ``_reset_local()`` — clear own state (children are handled by the base).
* ``_local_stats()`` — return own counters as a flat ``{leaf: value}``
  dict; leaves may themselves be dotted (``"class_counts.int_alu"``).

The module also hosts the registry *views* that rebuild the legacy
per-component stats shapes (``hht_stats`` dict, ``port_requests``,
``cache_stats``) from a flat registry, shared by ``RunResult`` and the
sweep engine's ``RunSummary`` so neither keeps duplicate bookkeeping.
"""

from __future__ import annotations

from typing import Mapping

StatsDict = dict[str, int | float]


def join_path(prefix: str, name: str) -> str:
    """Join two dotted-path fragments, skipping empty segments."""
    if not prefix:
        return name
    if not name:
        return prefix
    return f"{prefix}.{name}"


class SimComponent:
    """Base class for every named block of the simulated system."""

    def __init__(self, name: str):
        self.name = name
        self._children: list[SimComponent] = []

    # -- tree structure ------------------------------------------------
    def add_child(self, child: "SimComponent") -> "SimComponent":
        self._children.append(child)
        return child

    @property
    def children(self) -> tuple["SimComponent", ...]:
        return tuple(self._children)

    # -- tree-wide operations ------------------------------------------
    def reset(self) -> None:
        """Restore this component and all descendants to power-on state."""
        self._reset_local()
        for child in self._children:
            child.reset()

    def stats(self, prefix: str = "") -> StatsDict:
        """Flatten every counter in the subtree into dotted-path keys."""
        base = join_path(prefix, self.name)
        out: StatsDict = {}
        for leaf, value in self._local_stats().items():
            out[join_path(base, leaf)] = value
        for child in self._children:
            out.update(child.stats(base))
        return out

    # -- subclass hooks ------------------------------------------------
    def _reset_local(self) -> None:
        """Clear own state; the base class recurses into children."""

    def _local_stats(self) -> StatsDict:
        """Own counters as a flat ``{leaf: value}`` dict."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kids = ", ".join(c.name or "<anon>" for c in self._children)
        return (f"<{type(self).__name__} {self.name!r}"
                + (f" children=[{kids}]" if kids else "") + ">")


# ----------------------------------------------------------------------
# Registry views: legacy stats shapes derived from the flat registry.
# ----------------------------------------------------------------------

def subtree(stats: Mapping[str, int | float], prefix: str) -> StatsDict:
    """Return the sub-registry under *prefix* with the prefix stripped."""
    p = prefix if prefix.endswith(".") else prefix + "."
    return {k[len(p):]: v for k, v in stats.items() if k.startswith(p)}


_HHT_SNAPSHOT_KEYS = (
    "cpu_wait_cycles",
    "fifo_reads",
    "elements_supplied",
    "starts",
    "hht_wait_cycles",
    "buffers_filled",
)


def hht_stats_view(stats: Mapping[str, int | float]) -> dict[str, int]:
    """Legacy ``HHTStats.snapshot()`` dict, summed over every HHT instance.

    Matches registry keys of the form ``soc.hht.<leaf>`` or
    ``soc.hht<i>.<leaf>`` for the six snapshot counters; per-stream
    sub-keys (``soc.hht.stream.*``) are deliberately excluded.
    """
    out = {key: 0 for key in _HHT_SNAPSHOT_KEYS}
    for key, value in stats.items():
        parts = key.split(".")
        if (len(parts) == 3 and parts[0] == "soc"
                and parts[1].startswith("hht") and parts[2] in out):
            out[parts[2]] += int(value)
    return out


def port_requests_view(stats: Mapping[str, int | float]) -> dict[str, int]:
    """Legacy per-requester issue counts (``{"cpu": n, "hht": m}``)."""
    return {k: int(v)
            for k, v in subtree(stats, "soc.ram.requester").items()}


def cache_stats_view(stats: Mapping[str, int | float]) -> dict | None:
    """Legacy cache summary dict, or ``None`` when no L1D is configured."""
    sub = subtree(stats, "soc.l1d")
    if not sub:
        return None
    by_requester: dict[str, list[int]] = {}
    for key, value in sub.items():
        parts = key.split(".")
        if len(parts) == 3 and parts[0] == "requester":
            entry = by_requester.setdefault(parts[1], [0, 0])
            if parts[2] == "hits":
                entry[0] = int(value)
            elif parts[2] == "misses":
                entry[1] = int(value)
    return {
        "hits": int(sub.get("hits", 0)),
        "misses": int(sub.get("misses", 0)),
        "writes": int(sub.get("writes", 0)),
        "by_requester": by_requester,
    }
