#!/usr/bin/env python3
"""Tour of the sparse representations the paper surveys (Section 1).

Builds one matrix at several sparsity levels and compares the storage
cost of every supported format — CSR, CSC, COO, BCSR, bit-vector,
run-length and the SMASH-style hierarchical bitmap — illustrating the
storage-efficiency motivation of the paper's introduction, then writes
and reads a Matrix Market file.

Run:  python examples/format_tour.py
"""

import io

from repro.formats import FORMATS, convert, read_mtx, write_mtx
from repro.workloads import random_csr


def main() -> None:
    size = 128
    print("=== storage cost (KiB) by format and sparsity ===\n")
    names = sorted(FORMATS)
    header = f"{'sparsity':>8}  {'dense':>7}  " + "  ".join(f"{n:>9}" for n in names)
    print(header)
    print("-" * len(header))

    for sparsity in (0.5, 0.9, 0.99):
        csr = random_csr((size, size), sparsity, seed=21)
        cells = [f"{sparsity:>8.0%}", f"{csr.dense_bytes() / 1024:>7.1f}"]
        for name in names:
            m = convert(csr, name)
            cells.append(f"{m.storage_bytes() / 1024:>9.1f}")
        print("  ".join(cells))

    print("""
observations (cf. Section 1's format survey):
  * the bit-vector's 1-bit-per-element metadata wins at moderate
    sparsity; CSR/COO win once the matrix is very sparse;
  * BCSR trades padding for tiny metadata — good only for blocky data;
  * the hierarchical (SMASH-style) bitmap skips empty regions, beating
    the flat bitmap at 99 % sparsity.""")

    # Matrix Market round trip (the SuiteSparse interchange format).
    csr = random_csr((32, 32), 0.95, seed=22)
    buffer = io.StringIO(write_mtx(csr, comment="format_tour demo"))
    back = read_mtx(buffer)
    assert back.allclose(csr)
    print(f"\nMatrix Market round trip: {csr.nnz} entries preserved ✓")


if __name__ == "__main__":
    main()
