#!/usr/bin/env python3
"""Quickstart: run SpMV with and without the Hardware Helper Thread.

Builds the paper's Fig. 1 example matrix, shows its compressed forms,
then simulates the CSR SpMV kernel on the Table-1 system twice — the
CPU-only baseline with indexed gathers, and the HHT-assisted version —
and reports cycles, speedup and where the work went.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import run_spmv
from repro.formats import BitVectorMatrix, CSRMatrix
from repro.system import SystemConfig
from repro.workloads import random_csr, random_dense_vector


def show_fig1_formats() -> None:
    """The paper's Fig. 1: one matrix, two compressed representations."""
    dense = np.array(
        [[1.0, 0.0, 2.0],
         [0.0, 0.0, 3.0],
         [4.0, 0.0, 0.0]],
        dtype=np.float32,
    )
    csr = CSRMatrix.from_dense(dense)
    bv = BitVectorMatrix.from_dense(dense)

    print("=== Fig. 1: a 3x3 sparse matrix in CSR and bit-vector formats ===")
    print(f"dense:\n{dense}")
    print(f"CSR   rows={csr.rows.tolist()} cols={csr.cols.tolist()} "
          f"vals={csr.vals.tolist()}")
    print(f"BitVec bitmap={bv.mask().astype(int).ravel().tolist()} "
          f"vals={bv.vals.tolist()}")
    print(f"sparsity={csr.sparsity:.1%}\n")


def main() -> None:
    show_fig1_formats()

    print("=== Simulated system (paper Table 1) ===")
    config = SystemConfig.paper_table1()
    print(config.describe(), "\n")

    # A 256 x 256 matrix at 50 % sparsity, like the paper's sweeps.
    matrix = random_csr((256, 256), sparsity=0.5, seed=1)
    v = random_dense_vector(256, seed=2)
    print(f"workload: {matrix.nrows}x{matrix.ncols} CSR, "
          f"{matrix.nnz} non-zeros ({matrix.sparsity:.0%} sparse)\n")

    print("running CPU-only baseline (vector indexed-gather loads) ...")
    base = run_spmv(matrix, v, hht=False)
    print(f"  cycles = {base.cycles:,}   instructions = "
          f"{base.result.instructions:,}")

    print("running with the HHT streaming gathered vector values ...")
    hht = run_spmv(matrix, v, hht=True)
    print(f"  cycles = {hht.cycles:,}   instructions = "
          f"{hht.result.instructions:,}")

    print(f"\nspeedup                 : {base.cycles / hht.cycles:.2f}x "
          f"(paper Fig. 4: ~1.7x)")
    print(f"CPU wait for HHT        : {hht.result.cpu_wait_fraction:.2%} "
          f"of cycles (paper Fig. 6: rarely waits)")
    print(f"HHT idle (waiting CPU)  : {hht.result.hht_wait_cycles:,} cycles")
    print(f"memory requests (cpu)   : {hht.result.port_requests.get('cpu', 0):,}")
    print(f"memory requests (hht)   : {hht.result.port_requests.get('hht', 0):,}")

    # Both versions compute the same float32 result.
    assert np.array_equal(base.y, hht.y)
    ref = matrix.to_dense().astype(np.float64) @ v.astype(np.float64)
    assert np.allclose(hht.y, ref, rtol=1e-4)
    print("\nresult verified against numpy reference ✓")


if __name__ == "__main__":
    main()
