#!/usr/bin/env python3
"""Mini reproduction of the paper's headline sweeps (Figs 4-7) in one run.

Sweeps sparsity 10-90 % on a small matrix and prints the SpMV and SpMSpV
speedups plus the CPU-wait fractions, mirroring the shapes of the
paper's Figures 4, 5, 6 and 7 at example scale.  The full-size versions
live in benchmarks/.

Run:  python examples/sparsity_sweep.py [size]
"""

import sys

from repro.analysis import run_spmspv, run_spmv
from repro.workloads import random_csr, random_dense_vector, random_sparse_vector


def main(size: int = 96) -> None:
    sparsities = [0.1, 0.3, 0.5, 0.7, 0.9]
    print(f"=== sparsity sweep on a {size}x{size} matrix (VL=8, N=2) ===\n")
    header = (f"{'sparsity':>8}  {'SpMV':>6}  {'wait':>6}  "
              f"{'SpMSpV v1':>9}  {'v1 wait':>7}  {'SpMSpV v2':>9}  {'v2 wait':>7}")
    print(header)
    print("-" * len(header))

    for i, s in enumerate(sparsities):
        matrix = random_csr((size, size), s, seed=40 + i)
        v = random_dense_vector(size, seed=50 + i)
        sv = random_sparse_vector(size, s, seed=60 + i)

        spmv_base = run_spmv(matrix, v, hht=False)
        spmv_hht = run_spmv(matrix, v, hht=True)

        sp_base = run_spmspv(matrix, sv, mode="baseline")
        sp_v1 = run_spmspv(matrix, sv, mode="hht_v1")
        sp_v2 = run_spmspv(matrix, sv, mode="hht_v2")

        print(f"{s:>8.0%}"
              f"  {spmv_base.cycles / spmv_hht.cycles:>5.2f}x"
              f"  {spmv_hht.result.cpu_wait_fraction:>6.1%}"
              f"  {sp_base.cycles / sp_v1.cycles:>8.2f}x"
              f"  {sp_v1.result.cpu_wait_fraction:>7.1%}"
              f"  {sp_base.cycles / sp_v2.cycles:>8.2f}x"
              f"  {sp_v2.result.cpu_wait_fraction:>7.1%}")

    print("""
reading the shapes (cf. the paper):
  * SpMV gains are ~flat, slightly smaller at high sparsity (Fig. 4),
    and the CPU almost never waits for the HHT (Fig. 6).
  * SpMSpV variant-1 rises with sparsity and idles the CPU heavily;
    variant-2 is flatter and keeps the CPU busy (Figs 5 and 7).
  * variant-1 overtakes variant-2 only at the top of the sweep.""")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 96)
