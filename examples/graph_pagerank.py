#!/usr/bin/env python3
"""Graph analytics on the HHT: PageRank by repeated SpMV.

The paper's introduction motivates SpMV with graph workloads (label
propagation, centrality, multi-source BFS).  This example builds a small
scale-free web graph with networkx, forms the damped PageRank iteration
matrix, and runs power iterations on the simulated CPU+HHT system,
accumulating the cycle cost of every iteration.

Run:  python examples/graph_pagerank.py
"""

import networkx as nx
import numpy as np

from repro.analysis import run_spmv
from repro.workloads.graphs import pagerank_matrix, pagerank_reference

DAMPING = 0.85
ITERATIONS = 12


def main() -> None:
    graph = nx.barabasi_albert_graph(96, 3, seed=11)
    matrix = pagerank_matrix(graph, damping=DAMPING)
    n = matrix.nrows
    print("=== PageRank on the simulated CPU + HHT system ===")
    print(f"graph        : {n} nodes, {graph.number_of_edges()} edges "
          f"(Barabasi-Albert)")
    print(f"matrix       : {matrix.sparsity:.1%} sparse, "
          f"{matrix.nnz} non-zeros\n")

    teleport = np.float32((1.0 - DAMPING) / n)
    rank = np.full(n, 1.0 / n, dtype=np.float32)

    totals = {"baseline": 0, "hht": 0}
    for it in range(ITERATIONS):
        base = run_spmv(matrix, rank, hht=False, verify=False)
        hht = run_spmv(matrix, rank, hht=True, verify=False)
        assert np.array_equal(base.y, hht.y)
        totals["baseline"] += base.cycles
        totals["hht"] += hht.cycles
        rank = hht.y + teleport
        if it < 3 or it == ITERATIONS - 1:
            print(f"iteration {it:2d}: {hht.cycles:,} cycles (HHT), "
                  f"rank mass = {rank.sum():.4f}")

    print(f"\ntotal baseline cycles : {totals['baseline']:,}")
    print(f"total HHT cycles      : {totals['hht']:,}")
    print(f"speedup               : "
          f"{totals['baseline'] / totals['hht']:.2f}x")

    # Verify against a float64 power-iteration reference.
    ref = pagerank_reference(matrix, damping=DAMPING, iterations=ITERATIONS)
    assert np.allclose(rank, ref, atol=1e-4)
    top5 = np.argsort(rank)[::-1][:5]
    print("\ntop-5 nodes by PageRank (simulated == reference ✓):")
    for node in top5:
        print(f"  node {int(node):3d}  rank {rank[node]:.5f}  "
              f"degree {graph.degree(int(node))}")


if __name__ == "__main__":
    main()
