#!/usr/bin/env python3
"""The L1D-cached integration (paper Section 3.2) + kernel profiling.

The paper evaluates the cacheless MCU system; Section 3.2 also describes
a high-performance integration where the HHT back-end "issues requests
to the L1D cache".  This example compares both in front of a slow
(DRAM-ish) memory, and uses the kernel profiler to show where the
baseline's cycles go in each case.

Run:  python examples/cached_integration.py
"""

from repro.analysis import profile_spmv, run_spmv
from repro.memory import CacheConfig
from repro.system import Soc, SystemConfig
from repro.workloads import random_csr, random_dense_vector

RAM_LATENCY = 8  # slow memory: the regime where a cache matters


def build_config(cached: bool) -> SystemConfig:
    cfg = SystemConfig.paper_table1()
    cfg.ram_latency = RAM_LATENCY
    if cached:
        cfg.cache = CacheConfig(line_bytes=32, n_sets=64, assoc=2)
    return cfg


def main() -> None:
    matrix = random_csr((128, 128), sparsity=0.5, seed=51)
    v = random_dense_vector(128, seed=52)
    print("=== flat SRAM vs L1D-cached integration (RAM latency "
          f"{RAM_LATENCY} cycles) ===")
    print(f"matrix: {matrix.nrows}x{matrix.ncols}, "
          f"{matrix.sparsity:.0%} sparse\n")

    for cached in (False, True):
        label = "L1D-cached" if cached else "flat SRAM "
        base = run_spmv(matrix, v, hht=False, config=build_config(cached))
        hht = run_spmv(matrix, v, hht=True, config=build_config(cached))
        print(f"{label}: baseline {base.cycles:>9,} cycles | "
              f"HHT {hht.cycles:>9,} cycles | "
              f"speedup {base.cycles / hht.cycles:.2f}x")

    # Where do the baseline's cycles go?  Profile the hottest lines
    # (on the default Table-1 SRAM; the shares shift further toward the
    # gather as memory slows down).
    print("\n=== baseline profile (flat SRAM, Table-1 latency) ===")
    prof = profile_spmv(matrix, v, hht=False)
    print(prof.table(5).render())

    # And show the cache absorbing the gathers.
    cfg = build_config(cached=True)
    soc = Soc(cfg)
    soc.load_csr(matrix)
    soc.load_dense_vector(v)
    soc.allocate_output(matrix.nrows)
    from repro.kernels import spmv_baseline_vector

    soc.run(soc.assemble(spmv_baseline_vector()))
    stats = soc.cache.counters
    print(f"cached baseline: L1D hit rate {stats.hit_rate:.1%} "
          f"({stats.hits:,} hits / {stats.misses:,} misses)")
    print("""
take-away: with an L1D the gathers mostly hit (the 512-byte vector fits
easily), so the metadata overhead — and therefore the HHT's advantage —
shrinks.  On the paper's cacheless edge devices every gather pays the
full memory latency, which is exactly where the HHT earns its area.""")


if __name__ == "__main__":
    main()
