#!/usr/bin/env python3
"""Design-space exploration with the generic sweep API.

The paper fixes one design point (Table 1).  A downstream architect
wants to know how the HHT behaves *around* that point: this example
sweeps the three most consequential knobs with
``repro.analysis.parameter_sweep`` and prints the resulting trade-offs.

Run:  python examples/design_space.py
"""

from repro.analysis import hht_knob, parameter_sweep, system_knob


def main() -> None:
    print("=== design-space exploration around the Table-1 point ===\n")

    print("1. memory latency: how slow can the RAM be before the HHT's")
    print("   pipelined fills dominate the baseline's serialised gathers?")
    table = parameter_sweep(
        "ram_latency", [1, 2, 4, 8, 16], system_knob("ram_latency"),
        size=96, sparsity=0.5,
    )
    print(table.render())

    print("2. buffer depth (BLEN): Table 1 uses 32 B = 8 elements, matching")
    print("   the vector width — bigger buffers misalign with the CPU's")
    print("   row-chunked consumption.")
    table = parameter_sweep(
        "buffer_elems", [2, 4, 8, 16], hht_knob("buffer_elems"),
        size=96, sparsity=0.5, sweep_baseline=False,
    )
    print(table.render())

    print("3. variant-1 merge rate: the knob that positions the Fig. 5")
    print("   crossover (calibrated to 2 cycles/comparison — docs/calibration.md).")
    table = parameter_sweep(
        "merge_cycles_per_step", [1, 2, 4], hht_knob("merge_cycles_per_step"),
        workload="hht_v1", size=96, sparsity=0.7, sweep_baseline=False,
    )
    print(table.render())

    print("""sweep any other knob the same way:
    parameter_sweep("n_buffers", [1, 2, 4], hht_knob("n_buffers"))""")


if __name__ == "__main__":
    main()
