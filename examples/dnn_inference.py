#!/usr/bin/env python3
"""Edge-inference scenario: a sparse DNN classifier layer on the HHT.

The paper's motivation (Sections 1-2) is real-time ML inference on
microcontroller-class devices.  This example simulates the final
fully-connected layer of MobileNet — quantization-sparsified weights —
computing class logits with the Table-1 system, baseline vs HHT, and
reports latency at the 1.1 GHz core clock plus the 16 nm / 50 MHz energy
comparison of Section 5.5.

Run:  python examples/dnn_inference.py
"""

import numpy as np

from repro.analysis import run_spmspv, run_spmv
from repro.formats import SparseVector
from repro.power import energy_comparison
from repro.workloads import get_layer


def main() -> None:
    layer = get_layer("MobileNet")
    rows = 128  # a row tile of the 1000-class layer (see DESIGN.md)
    weights = layer.weights(seed=7, rows=rows)
    activations = layer.activations(seed=8)

    print("=== Sparse FC-layer inference (MobileNet classifier) ===")
    print(f"layer shape  : {weights.nrows} x {weights.ncols} "
          f"(tile of {layer.classes} classes)")
    print(f"sparsity     : {weights.sparsity:.1%} zero weights")
    print(f"storage      : {weights.storage_bytes() / 1024:.1f} KiB CSR vs "
          f"{weights.dense_bytes() / 1024:.1f} KiB dense "
          f"({weights.compression_ratio():.2f}x)\n")

    # --- dense activations: SpMV ---
    base = run_spmv(weights, activations, hht=False)
    hht = run_spmv(weights, activations, hht=True)
    speedup = base.cycles / hht.cycles
    print("dense activations (SpMV):")
    print(f"  baseline : {base.cycles:,} cycles "
          f"({base.result.seconds * 1e6:.1f} us @ 1.1 GHz)")
    print(f"  with HHT : {hht.cycles:,} cycles "
          f"({hht.result.seconds * 1e6:.1f} us @ 1.1 GHz)")
    print(f"  speedup  : {speedup:.2f}x  (paper Fig. 9: 1.53-1.92x)")

    cmp = energy_comparison(base.cycles, hht.cycles)
    print(f"  energy   : {cmp.baseline_uj:.2f} uJ -> {cmp.hht_uj:.2f} uJ "
          f"at 16 nm / 50 MHz ({cmp.savings_fraction:.1%} saved)\n")

    # --- ReLU-sparsified activations: SpMSpV ---
    sparse_act = activations.copy()
    rng = np.random.default_rng(9)
    sparse_act[rng.random(sparse_act.size) < 0.6] = 0.0  # post-ReLU zeros
    sv = SparseVector.from_dense(sparse_act)
    print(f"ReLU-sparse activations ({sv.sparsity:.0%} zero): SpMSpV")
    sbase = run_spmspv(weights, sv, mode="baseline")
    sv2 = run_spmspv(weights, sv, mode="hht_v2")
    sv1 = run_spmspv(weights, sv, mode="hht_v1")
    print(f"  baseline           : {sbase.cycles:,} cycles")
    print(f"  HHT variant-2      : {sv2.cycles:,} cycles "
          f"({sbase.cycles / sv2.cycles:.2f}x)")
    print(f"  HHT variant-1      : {sv1.cycles:,} cycles "
          f"({sbase.cycles / sv1.cycles:.2f}x, CPU idle "
          f"{sv1.result.cpu_wait_fraction:.0%})\n")

    # --- verify the logits ---
    ref = weights.to_dense().astype(np.float64) @ activations.astype(np.float64)
    top = int(np.argmax(hht.y))
    assert np.allclose(hht.y, ref, rtol=1e-4)
    assert int(np.argmax(ref)) == top
    print(f"predicted class (tile-local): {top}  — logits verified ✓")


if __name__ == "__main__":
    main()
