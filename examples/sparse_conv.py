#!/usr/bin/env python3
"""Convolution on the HHT (the paper's conclusion mentions convolution).

Lowers a pruned 3x3 convolution to SpMV via the kernel's sparse Toeplitz
operator, runs it on the simulated CPU+HHT system, and verifies against
a dense reference.  Edge detection on a synthetic image makes the result
easy to eyeball: the output highlights the square's borders.

Run:  python examples/sparse_conv.py
"""

import numpy as np

from repro.analysis import run_spmv
from repro.workloads.conv import conv2d_reference, conv2d_toeplitz


def synthetic_image(n: int = 24) -> np.ndarray:
    """A bright square on a dark background."""
    image = np.zeros((n, n), dtype=np.float32)
    image[n // 4 : 3 * n // 4, n // 4 : 3 * n // 4] = 1.0
    return image


def main() -> None:
    image = synthetic_image(24)
    laplacian = np.array(
        [[0.0, 1.0, 0.0],
         [1.0, -4.0, 1.0],
         [0.0, 1.0, 0.0]],
        dtype=np.float32,
    )

    T = conv2d_toeplitz(laplacian, image.shape, padding=1)
    print("=== convolution as SpMV on the HHT ===")
    print(f"image    : {image.shape[0]}x{image.shape[1]}")
    print(f"kernel   : 3x3 Laplacian ({int((laplacian != 0).sum())} taps)")
    print(f"operator : {T.nrows}x{T.ncols} Toeplitz, "
          f"{T.sparsity:.1%} sparse, {T.nnz} non-zeros\n")

    base = run_spmv(T, image.ravel(), hht=False)
    hht = run_spmv(T, image.ravel(), hht=True)
    print(f"baseline : {base.cycles:,} cycles")
    print(f"with HHT : {hht.cycles:,} cycles "
          f"({base.cycles / hht.cycles:.2f}x, "
          f"CPU wait {hht.result.cpu_wait_fraction:.1%})\n")

    out = hht.y.reshape(image.shape)
    ref = conv2d_reference(image, laplacian, padding=1)
    assert np.allclose(out, ref, rtol=1e-3, atol=1e-4)

    print("edge magnitude map (rows 10-14, columns 2-22):")
    for row in np.abs(out[10:14, 2:22]):
        print("  " + "".join(".:*#"[min(3, int(2 * v))] for v in row))
    print("\nresult verified against the dense reference ✓")


if __name__ == "__main__":
    main()
