#!/usr/bin/env python3
"""The programmable HHT (paper Section 7) across four sparse formats.

The paper's conclusion proposes replacing the fixed-function back-end
with "a simple RISCV like core" so one HHT can handle CSR, COO,
bit-vector and SMASH representations.  This example runs the *same*
matrix and the *same* consumer kernel against all four firmwares, plus
the ASIC engine and the CPU-only baseline, making the flexibility-vs-
throughput trade-off concrete.

Run:  python examples/programmable_hht.py
"""

import numpy as np

from repro.analysis import run_spmv, run_spmv_programmable
from repro.kernels import SUPPORTED_FORMATS, firmware_spmv_csr
from repro.power import (
    area_ratio_vs_ibex,
    programmable_area_ratio_vs_ibex,
)
from repro.workloads import random_csr, random_dense_vector


def main() -> None:
    matrix = random_csr((96, 96), sparsity=0.7, seed=31)
    v = random_dense_vector(96, seed=32)
    ref = matrix.to_dense().astype(np.float64) @ v.astype(np.float64)

    print("=== programmable HHT: one consumer kernel, four formats ===")
    print(f"matrix: {matrix.nrows}x{matrix.ncols}, "
          f"{matrix.sparsity:.0%} sparse, {matrix.nnz} nnz")
    fw = firmware_spmv_csr()
    print(f"CSR firmware: {len(fw)} helper-core instructions "
          f"(integer subset only)\n")

    base = run_spmv(matrix, v, hht=False)
    asic = run_spmv(matrix, v, hht=True)
    print(f"{'backend':<14} {'format':<10} {'cycles':>9} "
          f"{'speedup':>8} {'CPU idle':>9}")
    print("-" * 55)
    print(f"{'cpu-only':<14} {'csr':<10} {base.cycles:>9,} {'1.00x':>8} "
          f"{'-':>9}")
    print(f"{'asic-hht':<14} {'csr':<10} {asic.cycles:>9,} "
          f"{base.cycles / asic.cycles:>7.2f}x "
          f"{asic.result.cpu_wait_fraction:>9.0%}")

    for fmt in SUPPORTED_FORMATS:
        run = run_spmv_programmable(matrix, v, format_name=fmt)
        assert np.allclose(run.y, ref, rtol=1e-4)
        print(f"{'prog-hht':<14} {fmt:<10} {run.cycles:>9,} "
              f"{base.cycles / run.cycles:>7.2f}x "
              f"{run.result.cpu_wait_fraction:>9.0%}")

    print(f"""
take-aways (cf. the paper's Sections 6-7):
  * one helper core + four firmwares serves four representations with
    the *same* CPU-side consumer kernel — the flexibility the paper's
    conclusion argues for;
  * but a scalar metadata walk cannot feed an 8-wide vector CPU: the
    CPU idles, most of all for SMASH's hierarchical bitmap — matching
    the Section 6 observation that the HHT "performing more work than
    the CPU" causes CPU idling;
  * area: ASIC HHT = {area_ratio_vs_ibex():.0%} of an Ibex core,
    programmable HHT = {programmable_area_ratio_vs_ibex():.0%}.""")


if __name__ == "__main__":
    main()
